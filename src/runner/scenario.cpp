#include "runner/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace lr {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

/// Folds `value` into hash state `h` (one SplitMix64 round per field).
std::uint64_t mix(std::uint64_t h, std::uint64_t value) { return splitmix64(h ^ value); }

// Domain tags keep the derived streams (instance / scheduler / network)
// statistically independent even though they share the axis inputs.
constexpr std::uint64_t kInstanceDomain = 0x1a57a9cee1ULL;
constexpr std::uint64_t kSchedulerDomain = 0x5c4ed01e5ULL;
constexpr std::uint64_t kNetworkDomain = 0x4e7320a11ULL;

}  // namespace

std::uint64_t RunSpec::instance_seed() const {
  std::uint64_t h = mix(kInstanceDomain, static_cast<std::uint64_t>(topology));
  h = mix(h, static_cast<std::uint64_t>(size));
  return mix(h, seed);
}

std::uint64_t RunSpec::scheduler_seed() const { return mix(kSchedulerDomain, instance_seed()); }

std::uint64_t RunSpec::network_seed() const { return mix(kNetworkDomain, instance_seed()); }

namespace {

/// Torus side length for nominal size n: the largest >= 3 square that
/// fits, so `size = 10^6` yields a 1000 x 1000 torus.
std::size_t torus_side(std::size_t size) {
  std::size_t side = static_cast<std::size_t>(std::sqrt(static_cast<double>(size)));
  while ((side + 1) * (side + 1) <= size) ++side;  // fix sqrt rounding
  return std::max<std::size_t>(3, side);
}

/// Waypoint proximity radius for n nodes: expected degree ~= 6*pi, above
/// the ~ln n connectivity threshold up to well past 10^6 nodes, so
/// million-node draws connect without radius-growth retries.
double waypoint_radius(std::size_t n) {
  return std::sqrt(6.0 / static_cast<double>(std::max<std::size_t>(n, 1)));
}

}  // namespace

Instance make_instance(const RunSpec& spec) {
  std::mt19937_64 rng(spec.instance_seed());
  switch (spec.topology) {
    case TopologyKind::kChain:
      return make_worst_case_chain(spec.size);
    case TopologyKind::kRandom:
      return make_random_instance(spec.size, spec.size, rng);
    case TopologyKind::kGrid:
      return make_grid_instance(spec.size / 8 + 2, 8, rng);
    case TopologyKind::kLayered:
      return make_layered_bad_instance(spec.size / 8 + 2, 8, 0.3, rng);
    case TopologyKind::kStar:
      return make_sink_source_instance(spec.size | 1);
    case TopologyKind::kUnitDisk:
      return make_unit_disk_instance(spec.size, 0.25, rng);
    case TopologyKind::kTorus:
      return make_torus_instance(torus_side(spec.size), torus_side(spec.size), rng);
    case TopologyKind::kWideRandom:
      return make_wide_random_instance(spec.size, 8.0, rng);
    case TopologyKind::kWaypoint:
      // The static part of the churn workload; the schedule draws come
      // after it on the same stream, so dropping them changes nothing.
      return make_waypoint_churn_instance(std::max<std::size_t>(spec.size, 2),
                                          waypoint_radius(spec.size), 0, rng)
          .instance;
  }
  throw std::invalid_argument("make_instance: unknown topology kind");
}

ChurnInstance make_churn_instance(const RunSpec& spec) {
  if (spec.topology == TopologyKind::kWaypoint) {
    std::mt19937_64 rng(spec.instance_seed());
    return make_waypoint_churn_instance(std::max<std::size_t>(spec.size, 2),
                                        waypoint_radius(spec.size), spec.churn_events, rng);
  }
  return {make_instance(spec), {}};
}

const char* topology_token(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kChain:
      return "chain";
    case TopologyKind::kRandom:
      return "random";
    case TopologyKind::kGrid:
      return "grid";
    case TopologyKind::kLayered:
      return "layered";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kUnitDisk:
      return "unitdisk";
    case TopologyKind::kTorus:
      return "torus";
    case TopologyKind::kWideRandom:
      return "widerandom";
    case TopologyKind::kWaypoint:
      return "waypoint";
  }
  return "?";
}

const char* algorithm_token(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kFullReversal:
      return "fr";
    case AlgorithmKind::kOneStepPR:
      return "pr";
    case AlgorithmKind::kNewPR:
      return "newpr";
    case AlgorithmKind::kHybrid:
      return "hybrid";
    case AlgorithmKind::kTora:
      return "tora";
    case AlgorithmKind::kDistFR:
      return "dist-fr";
    case AlgorithmKind::kDistPR:
      return "dist-pr";
    case AlgorithmKind::kSimRPrime:
      return "sim-rprime";
    case AlgorithmKind::kSimR:
      return "sim-r";
    case AlgorithmKind::kSimRRev:
      return "sim-rrev";
    case AlgorithmKind::kService:
      return "service";
  }
  return "?";
}

const char* path_token(ExecutionPath path) {
  switch (path) {
    case ExecutionPath::kCsr:
      return "csr";
    case ExecutionPath::kLegacy:
      return "legacy";
  }
  return "?";
}

const char* scheduler_token(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kLowestId:
      return "lowest";
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kRoundRobin:
      return "rr";
    case SchedulerKind::kFarthestFirst:
      return "farthest";
  }
  return "?";
}

namespace {

template <typename Kind>
Kind parse_token(const std::string& token, const char* axis, const char* (*name)(Kind),
                 std::initializer_list<Kind> all) {
  for (const Kind kind : all) {
    if (token == name(kind)) return kind;
  }
  std::string known;
  for (const Kind kind : all) {
    if (!known.empty()) known += ", ";
    known += name(kind);
  }
  throw std::invalid_argument(std::string("unknown ") + axis + " '" + token + "' (known: " +
                              known + ")");
}

}  // namespace

TopologyKind parse_topology(const std::string& token) {
  return parse_token(token, "topology", topology_token,
                     {TopologyKind::kChain, TopologyKind::kRandom, TopologyKind::kGrid,
                      TopologyKind::kLayered, TopologyKind::kStar, TopologyKind::kUnitDisk,
                      TopologyKind::kTorus, TopologyKind::kWideRandom, TopologyKind::kWaypoint});
}

AlgorithmKind parse_algorithm(const std::string& token) {
  return parse_token(token, "algorithm", algorithm_token,
                     {AlgorithmKind::kFullReversal, AlgorithmKind::kOneStepPR,
                      AlgorithmKind::kNewPR, AlgorithmKind::kHybrid, AlgorithmKind::kTora,
                      AlgorithmKind::kDistFR, AlgorithmKind::kDistPR, AlgorithmKind::kSimRPrime,
                      AlgorithmKind::kSimR, AlgorithmKind::kSimRRev, AlgorithmKind::kService});
}

SchedulerKind parse_scheduler(const std::string& token) {
  return parse_token(token, "scheduler", scheduler_token,
                     {SchedulerKind::kLowestId, SchedulerKind::kRandom,
                      SchedulerKind::kRoundRobin, SchedulerKind::kFarthestFirst});
}

ExecutionPath parse_path(const std::string& token) {
  return parse_token(token, "path", path_token, {ExecutionPath::kCsr, ExecutionPath::kLegacy});
}

std::size_t SweepSpec::run_count() const {
  return topologies.size() * sizes.size() * algorithms.size() * schedulers.size() * seeds.size();
}

std::vector<RunSpec> SweepSpec::expand() const {
  std::vector<RunSpec> runs;
  runs.reserve(run_count());
  for (const TopologyKind topology : topologies) {
    for (const std::size_t size : sizes) {
      for (const AlgorithmKind algorithm : algorithms) {
        for (const SchedulerKind scheduler : schedulers) {
          for (const std::uint64_t seed : seeds) {
            RunSpec spec;
            spec.topology = topology;
            spec.size = size;
            spec.algorithm = algorithm;
            spec.scheduler = scheduler;
            spec.seed = seed;
            spec.max_steps = max_steps;
            spec.path = path;
            spec.engine_threads = engine_threads;
            spec.sim_scheduler = sim_scheduler;
            spec.sim_threads = sim_threads;
            spec.service_workload = service_workload;
            spec.service_clients = service_clients;
            spec.service_duration = service_duration;
            spec.churn_events = churn_events;
            runs.push_back(spec);
          }
        }
      }
    }
  }
  return runs;
}

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split_values(const std::string& list) {
  std::vector<std::string> values;
  std::istringstream iss(list);
  std::string item;
  while (std::getline(iss, item, ',')) {
    const std::string value = trim(item);
    if (value.empty()) throw std::invalid_argument("empty value in list '" + list + "'");
    values.push_back(value);
  }
  return values;
}

std::uint64_t parse_u64(const std::string& token) {
  if (token.empty() || !std::all_of(token.begin(), token.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c));
      })) {
    throw std::invalid_argument("expected a non-negative integer, got '" + token + "'");
  }
  return std::stoull(token);
}

/// Parses an integer list with `lo..hi` inclusive range sugar.
std::vector<std::uint64_t> parse_integer_list(const std::string& list) {
  constexpr std::uint64_t kMaxRange = 1'000'000;  // guard against typo'd 1..1e18 sweeps
  std::vector<std::uint64_t> values;
  for (const std::string& token : split_values(list)) {
    const std::size_t dots = token.find("..");
    if (dots == std::string::npos) {
      values.push_back(parse_u64(token));
      continue;
    }
    const std::uint64_t lo = parse_u64(trim(token.substr(0, dots)));
    const std::uint64_t hi = parse_u64(trim(token.substr(dots + 2)));
    if (hi < lo) throw std::invalid_argument("descending range '" + token + "'");
    if (hi - lo + 1 > kMaxRange) throw std::invalid_argument("range too large: '" + token + "'");
    for (std::uint64_t v = lo; v <= hi; ++v) values.push_back(v);
  }
  return values;
}

}  // namespace

SweepSpec SweepSpec::parse(std::istream& is) {
  SweepSpec spec;
  std::set<std::string> seen;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("sweep spec line " + std::to_string(line_number) +
                                  ": expected 'key = values', got '" + stripped + "'");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string values = trim(stripped.substr(eq + 1));
    if (!seen.insert(key).second) {
      throw std::invalid_argument("sweep spec line " + std::to_string(line_number) +
                                  ": duplicate key '" + key + "'");
    }
    try {
      if (key == "topology") {
        for (const std::string& token : split_values(values)) {
          spec.topologies.push_back(parse_topology(token));
        }
      } else if (key == "size") {
        for (const std::uint64_t v : parse_integer_list(values)) {
          spec.sizes.push_back(static_cast<std::size_t>(v));
        }
      } else if (key == "algorithm") {
        for (const std::string& token : split_values(values)) {
          spec.algorithms.push_back(parse_algorithm(token));
        }
      } else if (key == "scheduler") {
        for (const std::string& token : split_values(values)) {
          spec.schedulers.push_back(parse_scheduler(token));
        }
      } else if (key == "seed") {
        spec.seeds = parse_integer_list(values);
      } else if (key == "max_steps") {
        const auto list = parse_integer_list(values);
        if (list.size() != 1) throw std::invalid_argument("max_steps takes a single value");
        spec.max_steps = list[0];
      } else if (key == "path") {
        const auto tokens = split_values(values);
        if (tokens.size() != 1) throw std::invalid_argument("path takes a single value");
        spec.path = parse_path(tokens[0]);
      } else if (key == "engine_threads") {
        const auto list = parse_integer_list(values);
        if (list.size() != 1) throw std::invalid_argument("engine_threads takes a single value");
        spec.engine_threads = static_cast<std::size_t>(list[0]);
      } else if (key == "sim_scheduler") {
        const auto tokens = split_values(values);
        if (tokens.size() != 1) throw std::invalid_argument("sim_scheduler takes a single value");
        spec.sim_scheduler = parse_event_scheduler(tokens[0]);
      } else if (key == "sim_threads") {
        const auto list = parse_integer_list(values);
        if (list.size() != 1) throw std::invalid_argument("sim_threads takes a single value");
        spec.sim_threads = static_cast<std::size_t>(list[0]);
      } else if (key == "service_workload") {
        const auto tokens = split_values(values);
        if (tokens.size() != 1) {
          throw std::invalid_argument("service_workload takes a single value");
        }
        spec.service_workload = parse_service_workload(tokens[0]);
      } else if (key == "service_clients") {
        const auto list = parse_integer_list(values);
        if (list.size() != 1 || list[0] == 0) {
          throw std::invalid_argument("service_clients takes a single value >= 1");
        }
        spec.service_clients = static_cast<std::size_t>(list[0]);
      } else if (key == "service_duration") {
        const auto list = parse_integer_list(values);
        if (list.size() != 1) {
          throw std::invalid_argument("service_duration takes a single value");
        }
        spec.service_duration = list[0];
      } else if (key == "churn_events") {
        const auto list = parse_integer_list(values);
        if (list.size() != 1) {
          throw std::invalid_argument("churn_events takes a single value");
        }
        spec.churn_events = static_cast<std::size_t>(list[0]);
      } else {
        throw std::invalid_argument("unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument& error) {
      throw std::invalid_argument("sweep spec line " + std::to_string(line_number) + ": " +
                                  error.what());
    }
  }
  for (const auto& [axis, empty] :
       {std::pair<const char*, bool>{"topology", spec.topologies.empty()},
        {"size", spec.sizes.empty()},
        {"algorithm", spec.algorithms.empty()}}) {
    if (empty) throw std::invalid_argument(std::string("sweep spec: missing required '") + axis +
                                           "' axis");
  }
  if (spec.schedulers.empty()) spec.schedulers.push_back(SchedulerKind::kLowestId);
  if (spec.seeds.empty()) spec.seeds.push_back(1);
  return spec;
}

SweepSpec SweepSpec::parse_string(const std::string& text) {
  std::istringstream iss(text);
  return parse(iss);
}

std::string format_sweep_spec(const SweepSpec& spec) {
  std::ostringstream os;
  const auto list_line = [&os](const char* key, const auto& values, const auto& token) {
    os << key << " = ";
    bool first = true;
    for (const auto& value : values) {
      if (!first) os << ", ";
      first = false;
      os << token(value);
    }
    os << "\n";
  };
  const auto integer = [](const auto value) { return std::to_string(value); };
  list_line("topology", spec.topologies, topology_token);
  list_line("size", spec.sizes, integer);
  list_line("algorithm", spec.algorithms, algorithm_token);
  list_line("scheduler", spec.schedulers, scheduler_token);
  list_line("seed", spec.seeds, integer);
  os << "max_steps = " << spec.max_steps << "\n";
  os << "path = " << path_token(spec.path) << "\n";
  os << "engine_threads = " << spec.engine_threads << "\n";
  os << "sim_scheduler = " << event_scheduler_token(spec.sim_scheduler) << "\n";
  os << "sim_threads = " << spec.sim_threads << "\n";
  os << "service_workload = " << service_workload_token(spec.service_workload) << "\n";
  os << "service_clients = " << spec.service_clients << "\n";
  os << "service_duration = " << spec.service_duration << "\n";
  os << "churn_events = " << spec.churn_events << "\n";
  return os.str();
}

}  // namespace lr

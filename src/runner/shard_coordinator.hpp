#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "runner/retry_policy.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/shard_transport.hpp"

/// \file shard_coordinator.hpp
/// The transport-agnostic shard coordinator of the sweep dataplane: one
/// poll() loop that dispatches shards onto any mix of ShardTransports
/// (runner/shard_transport.hpp), merges their record streams, and owns
/// every robustness decision — inactivity watchdogs, coordinator
/// heartbeats, backoff-scheduled retries (runner/retry_policy.hpp),
/// endpoint-death detection, shard reassignment to surviving endpoints,
/// and the local-process fallback when every remote endpoint is gone.
///
/// Both sweep backends are thin wrappers over this loop:
/// ProcessShardRunner (runner/process_runner.hpp) hands it one
/// ProcessShardTransport; MultiHostShardRunner hands it one
/// TcpShardTransport per `--hosts` entry plus an optional process
/// fallback.  The merge contract is owned here, once: every record is
/// validated against the coordinator's own expansion and written to its
/// global slot, so the merged tables are byte-identical to the
/// in-process runner's at every transport mix, worker count, and fault
/// schedule — retries and reassignments simply overwrite slots with
/// identical bytes.
///
/// Liveness state machine (docs/ARCHITECTURE.md §"Multi-host sweep
/// dataplane"): every live attempt carries a deadline that any received
/// frame pushes forward; a silent attempt past the deadline is aborted
/// and charged.  Failures (crash, EOF, protocol violation, stall,
/// refused connect, heartbeat-write failure) increment the serving
/// endpoint's consecutive-failure count; at the threshold the endpoint
/// is declared dead and receives no new work, and its shards are
/// reassigned to surviving endpoints (preferring an endpoint other than
/// the one that just failed).  An endpoint that later completes a shard
/// is resurrected.  When every endpoint is dead the coordinator engages
/// the fallback transport once, if configured; otherwise it fails
/// loudly with per-shard diagnostics.  Every wait in the loop is
/// deadline-bounded, so no configuration can hang.

namespace lr {

/// Configuration of a ShardCoordinator.
struct CoordinatorOptions {
  /// Attempt budget and backoff schedule; max_attempts counts total
  /// tries per shard (first + retries).
  RetryPolicy retry;

  /// Inactivity watchdog per attempt, in milliseconds: an attempt whose
  /// channel yields no frame for this long is aborted and charged.  The
  /// LR_TEST_WORKER_TIMEOUT_MS environment variable overrides it.
  int timeout_ms = 30'000;

  /// Budget for establishing one attempt (fork + spec shipping, or
  /// connect + request shipping).
  int start_timeout_ms = 5'000;

  /// Coordinator -> worker beacon interval; 0 derives timeout_ms / 4.
  int heartbeat_ms = 0;

  /// Consecutive failures after which an endpoint is declared dead.
  std::size_t endpoint_failure_threshold = 2;

  /// Error-message prefix naming the backend ("multi-process sweep",
  /// "multi-host sweep").
  std::string label = "sweep";

  std::size_t threads = 1;      ///< worker-internal thread count
  std::size_t cache_cap = 0;    ///< worker SweepCache LRU bound
  std::string snapshot_dir;     ///< worker snapshot dir (pipe transport only)
};

/// The generic coordinator: shards a sweep across `transports` (and,
/// when every one of them dies, `fallback`) and merges the streams.
/// See the file comment for the dataplane and liveness contracts.
class ShardCoordinator {
 public:
  /// Creates a coordinator over `transports` (at least one required).
  /// `fallback`, when non-null, is held in reserve and engaged only if
  /// every primary endpoint is declared dead mid-sweep.
  ShardCoordinator(CoordinatorOptions options,
                   std::vector<std::shared_ptr<ShardTransport>> transports,
                   std::shared_ptr<ShardTransport> fallback = nullptr);

  /// Expands `spec`, runs every shard to completion across the
  /// endpoints (retrying, reassigning, and falling back within budget),
  /// and returns the merged report, byte-identical to the in-process
  /// runner's.  Throws std::runtime_error with per-shard diagnostics
  /// when a shard exhausts its attempts or every endpoint dies with
  /// work outstanding — never hangs, never silently drops runs.
  SweepReport run(const SweepSpec& spec);

  /// Per-shard attempt/failure log of the most recent run() call (valid
  /// after both success and failure).
  const std::vector<ShardDiagnostics>& shard_diagnostics() const noexcept {
    return diagnostics_;
  }

  /// True when the most recent run() had to engage the fallback
  /// transport because every primary endpoint died.
  bool fallback_engaged() const noexcept { return fallback_engaged_; }

  /// Sum of the primary transports' capacities: the shard count a large
  /// enough sweep is split into.
  std::size_t total_capacity() const noexcept;

 private:
  CoordinatorOptions options_;
  std::vector<std::shared_ptr<ShardTransport>> transports_;
  std::shared_ptr<ShardTransport> fallback_;
  std::vector<ShardDiagnostics> diagnostics_;
  bool fallback_engaged_ = false;
};

/// Executes sweeps by sharding them across remote `shard-server`
/// daemons (runner/shard_server.hpp) over TCP — the `lr_cli sweep
/// --hosts` backend.  Each host serves `HostSpec::workers` concurrent
/// shard connections; RunnerOptions::process_workers > 0 additionally
/// arms a local fork/exec fallback engaged only when every host dies.
/// The LR_TEST_TRANSPORT_FAULT environment variable
/// (`kind:shard[:attempts]`, kind in connect|drop|corrupt|hbstall|
/// delay) wraps every host in a deterministic FaultyTransport — the
/// network fault battery of tests/multi_host_runner_test.cpp.
class MultiHostShardRunner {
 public:
  /// Creates a runner over `hosts` (at least one required; throws
  /// std::invalid_argument on an empty list or a malformed
  /// LR_TEST_TRANSPORT_FAULT).  `fallback_worker_command` is the binary
  /// the local fallback fork/execs (empty = this process's own binary).
  MultiHostShardRunner(RunnerOptions options, std::vector<HostSpec> hosts,
                       std::string fallback_worker_command = {});

  /// Runs the sweep across the hosts; same contract and exception
  /// behavior as ShardCoordinator::run().
  SweepReport run(const SweepSpec& spec);

  /// Per-shard attempt/failure log of the most recent run() call.
  const std::vector<ShardDiagnostics>& shard_diagnostics() const noexcept {
    return coordinator_.shard_diagnostics();
  }

  /// True when the most recent run() fell back to local workers.
  bool fallback_engaged() const noexcept { return coordinator_.fallback_engaged(); }

  /// Total concurrent shard connections across all hosts.
  std::size_t total_workers() const noexcept { return coordinator_.total_capacity(); }

 private:
  ShardCoordinator coordinator_;
};

}  // namespace lr

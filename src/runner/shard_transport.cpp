#include "runner/shard_transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "runner/shard_protocol.hpp"

namespace lr {

std::vector<ShardRange> shard_ranges(std::size_t runs, std::size_t shards) {
  std::vector<ShardRange> ranges;
  if (runs == 0 || shards == 0) return ranges;
  shards = std::min(shards, runs);
  ranges.reserve(shards);
  const std::size_t base = runs / shards;
  const std::size_t extra = runs % shards;  // first `extra` shards take one more
  std::size_t begin = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const std::size_t size = base + (shard < extra ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ranges;
}

namespace {

using Clock = std::chrono::steady_clock;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Human-readable cause of a child's wait status.
std::string describe_status(int status) {
  if (WIFEXITED(status)) return "exit code " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "killed by signal " + std::to_string(sig) + (name ? std::string(" (") + name + ")" : "");
  }
  return "unknown wait status " + std::to_string(status);
}

/// The running binary's path: the default worker command, so any binary
/// that forwards `sweep-worker` argv to sweep_worker_main() self-hosts
/// its workers.
std::string self_executable_path() {
  char buffer[4096];
  const ssize_t length = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (length <= 0) {
    throw std::runtime_error(
        "ProcessShardTransport: cannot resolve /proc/self/exe; pass worker_command explicitly");
  }
  buffer[length] = '\0';
  return buffer;
}

/// Maps one nonblocking read() on `fd` to the channel-read contract.
ChannelRead read_fd(int fd, std::uint8_t* buffer, std::size_t capacity) {
  ChannelRead result;
  for (;;) {
    const ssize_t n = ::read(fd, buffer, capacity);
    if (n > 0) {
      result.kind = ChannelRead::Kind::kData;
      result.bytes = static_cast<std::size_t>(n);
      return result;
    }
    if (n == 0) {
      result.kind = ChannelRead::Kind::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.kind = ChannelRead::Kind::kWouldBlock;
      return result;
    }
    result.kind = ChannelRead::Kind::kError;
    result.error = std::string("read error: ") + std::strerror(errno);
    return result;
  }
}

/// Writes `size` bytes to a (possibly nonblocking) fd, polling for
/// writability until `deadline`.  Returns empty on success, else the
/// failure description.
std::string write_all_deadline(int fd, const std::uint8_t* data, std::size_t size,
                               Clock::time_point deadline) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return std::string("write: ") + std::strerror(errno);
    }
    const auto remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
    if (remaining_ms <= 0) return "write timed out";
    struct pollfd pfd {
      fd, POLLOUT, 0
    };
    if (::poll(&pfd, 1, static_cast<int>(std::min<long long>(remaining_ms, 1000))) < 0 &&
        errno != EINTR) {
      return std::string("poll: ") + std::strerror(errno);
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Pipe channel: one fork/exec'd sweep-worker child
// ---------------------------------------------------------------------------

class ProcessShardChannel final : public ShardChannel {
 public:
  ProcessShardChannel(pid_t pid, int fd) : pid_(pid), fd_(fd) {}
  ~ProcessShardChannel() override { abort(); }

  int poll_fd() const noexcept override { return fd_; }

  ChannelRead read_some(std::uint8_t* buffer, std::size_t capacity) override {
    return read_fd(fd_, buffer, capacity);
  }

  // A pipe to our own child has implicit liveness (death is an EOF), so
  // there is no beacon to send.
  std::string send_heartbeat(std::uint64_t /*sequence*/) override { return {}; }

  std::string abort() override {
    close_fd(fd_);
    if (pid_ <= 0) return "not running";
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return describe_status(status);
  }

  void complete() override {
    close_fd(fd_);
    if (pid_ <= 0) return;
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

 private:
  pid_t pid_;
  int fd_;
};

// ---------------------------------------------------------------------------
// TCP channel: one connection to a shard-server
// ---------------------------------------------------------------------------

class TcpShardChannel final : public ShardChannel {
 public:
  explicit TcpShardChannel(int fd) : fd_(fd) {}
  ~TcpShardChannel() override { abort(); }

  int poll_fd() const noexcept override { return fd_; }

  ChannelRead read_some(std::uint8_t* buffer, std::size_t capacity) override {
    return read_fd(fd_, buffer, capacity);
  }

  std::string send_heartbeat(std::uint64_t sequence) override {
    if (fd_ < 0) return "connection already closed";
    HeartbeatFrame beacon;
    beacon.from_coordinator = 1;
    beacon.sequence = sequence;
    const std::vector<std::uint8_t> bytes = encode_frame(beacon);
    // A beacon is tiny; if the socket cannot absorb it within a second
    // the connection is effectively dead and the coordinator should
    // treat the attempt as failed.
    const std::string error = write_all_deadline(
        fd_, bytes.data(), bytes.size(), Clock::now() + std::chrono::milliseconds(1000));
    if (!error.empty()) return "heartbeat failed (" + error + ")";
    return {};
  }

  std::string abort() override {
    if (fd_ < 0) return "not connected";
    close_fd(fd_);
    return "connection closed by coordinator";
  }

  void complete() override { close_fd(fd_); }

 private:
  int fd_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ProcessShardTransport
// ---------------------------------------------------------------------------

ProcessShardTransport::ProcessShardTransport(std::size_t workers, std::string worker_command)
    : workers_(workers), worker_command_(std::move(worker_command)) {
  if (workers_ == 0) {
    throw std::invalid_argument("ProcessShardTransport: workers must be >= 1");
  }
}

ShardStart ProcessShardTransport::start(const ShardAssignment& assignment) {
  ShardStart result;
  const std::string command = worker_command_.empty() ? self_executable_path() : worker_command_;

  int spec_pipe[2] = {-1, -1};
  int frame_pipe[2] = {-1, -1};
  if (::pipe(spec_pipe) != 0) {
    result.error = std::string("pipe() failed: ") + std::strerror(errno);
    return result;
  }
  if (::pipe(frame_pipe) != 0) {
    result.error = std::string("pipe() failed: ") + std::strerror(errno);
    close_fd(spec_pipe[0]);
    close_fd(spec_pipe[1]);
    return result;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    result.error = std::string("fork() failed: ") + std::strerror(errno);
    for (int* fd : {&spec_pipe[0], &spec_pipe[1], &frame_pipe[0], &frame_pipe[1]}) close_fd(*fd);
    return result;
  }
  if (pid == 0) {
    // Child: spec on stdin, frames on stdout, stderr passes through so
    // worker error messages surface in the parent's diagnostics stream.
    ::dup2(spec_pipe[0], STDIN_FILENO);
    ::dup2(frame_pipe[1], STDOUT_FILENO);
    for (const int fd : {spec_pipe[0], spec_pipe[1], frame_pipe[0], frame_pipe[1]}) ::close(fd);
    ::setenv("LR_SWEEP_WORKER", "1", 1);
    const std::string shard_arg = std::to_string(assignment.shard);
    const std::string range_arg =
        std::to_string(assignment.range.begin) + ":" + std::to_string(assignment.range.end);
    const std::string total_arg = std::to_string(assignment.total);
    const std::string attempt_arg = std::to_string(assignment.attempt);
    const std::string threads_arg = std::to_string(assignment.threads);
    const std::string cap_arg = std::to_string(assignment.cache_cap);
    std::vector<const char*> argv = {command.c_str(),     "sweep-worker",
                                     "--shard",           shard_arg.c_str(),
                                     "--range",           range_arg.c_str(),
                                     "--total",           total_arg.c_str(),
                                     "--attempt",         attempt_arg.c_str(),
                                     "--threads",         threads_arg.c_str(),
                                     "--cache-cap",       cap_arg.c_str()};
    if (!assignment.snapshot_dir.empty()) {
      // Every shard maps the same snapshot files, so the kernel keeps one
      // physical copy of each workload's pages across the worker fleet.
      argv.push_back("--snapshot-dir");
      argv.push_back(assignment.snapshot_dir.c_str());
    }
    argv.push_back(nullptr);
    ::execv(command.c_str(), const_cast<char**>(argv.data()));
    std::fprintf(stderr, "error: cannot exec sweep worker '%s': %s\n", command.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }

  // Parent.
  close_fd(spec_pipe[0]);
  close_fd(frame_pipe[1]);
  ::fcntl(frame_pipe[0], F_SETFL, O_NONBLOCK);
  ::fcntl(spec_pipe[1], F_SETFL, O_NONBLOCK);

  auto channel = std::make_unique<ProcessShardChannel>(pid, frame_pipe[0]);

  // Ship the spec text; deadline-bounded so a worker that dies (or
  // wedges) before reading its stdin becomes a per-shard failure, not a
  // parent hang.  The worker reads stdin to EOF before emitting frames.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(assignment.start_timeout_ms);
  const std::string error = write_all_deadline(
      spec_pipe[1], reinterpret_cast<const std::uint8_t*>(assignment.spec_text.data()),
      assignment.spec_text.size(), deadline);
  close_fd(spec_pipe[1]);
  if (!error.empty()) {
    result.error = "failed shipping sweep spec to worker (" + error + ", " + channel->abort() + ")";
    return result;
  }
  result.channel = std::move(channel);
  return result;
}

// ---------------------------------------------------------------------------
// TcpShardTransport
// ---------------------------------------------------------------------------

TcpShardTransport::TcpShardTransport(std::string host, std::uint16_t port, std::size_t workers)
    : host_(std::move(host)), port_(port), workers_(workers) {
  if (workers_ == 0) {
    throw std::invalid_argument("TcpShardTransport: workers must be >= 1");
  }
  if (port_ == 0) {
    throw std::invalid_argument("TcpShardTransport: port must be 1..65535");
  }
  endpoint_ = host_ + ":" + std::to_string(port_);
}

ShardStart TcpShardTransport::start(const ShardAssignment& assignment) {
  ShardStart result;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(assignment.start_timeout_ms);

  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* addresses = nullptr;
  const std::string port_text = std::to_string(port_);
  const int resolve = ::getaddrinfo(host_.c_str(), port_text.c_str(), &hints, &addresses);
  if (resolve != 0) {
    result.error = endpoint_ + ": cannot resolve host (" + ::gai_strerror(resolve) + ")";
    return result;
  }

  int fd = -1;
  std::string last_error = "no addresses";
  for (struct addrinfo* address = addresses; address != nullptr; address = address->ai_next) {
    fd = ::socket(address->ai_family, address->ai_socktype, address->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    if (::connect(fd, address->ai_addr, address->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS) {
      // Nonblocking connect: poll for writability, then read SO_ERROR —
      // a refused or timed-out connection is a returned failure the
      // coordinator can charge and retry elsewhere, never a hang.
      const auto remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
      struct pollfd pfd {
        fd, POLLOUT, 0
      };
      const int ready = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(remaining_ms, 0)));
      int so_error = ETIMEDOUT;
      socklen_t so_len = sizeof(so_error);
      if (ready > 0) ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
      if (ready > 0 && so_error == 0) break;
      last_error = std::string("connect: ") + std::strerror(so_error);
    } else {
      last_error = std::string("connect: ") + std::strerror(errno);
    }
    close_fd(fd);
  }
  ::freeaddrinfo(addresses);
  if (fd < 0) {
    result.error = endpoint_ + ": " + last_error;
    return result;
  }

  // Records are small and latency-sensitive relative to the watchdogs;
  // don't let Nagle batch them against delayed ACKs.
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

  auto channel = std::make_unique<TcpShardChannel>(fd);

  ShardRequestFrame request;
  request.shard = assignment.shard;
  request.begin = assignment.range.begin;
  request.end = assignment.range.end;
  request.total = assignment.total;
  request.attempt = assignment.attempt;
  request.threads = assignment.threads;
  request.cache_cap = assignment.cache_cap;
  request.heartbeat_ms = static_cast<std::uint32_t>(std::max(assignment.heartbeat_ms, 1));
  request.liveness_timeout_ms =
      static_cast<std::uint32_t>(std::max(assignment.liveness_timeout_ms, 1));
  request.spec_text = assignment.spec_text;
  const std::vector<std::uint8_t> bytes = encode_frame(request);
  const std::string error = write_all_deadline(fd, bytes.data(), bytes.size(), deadline);
  if (!error.empty()) {
    result.error = endpoint_ + ": failed shipping shard request (" + error + ")";
    channel->abort();
    return result;
  }
  result.channel = std::move(channel);
  return result;
}

// ---------------------------------------------------------------------------
// Host-list parsing
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_host_entry(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("bad --hosts entry '" + entry + "': " + why +
                              " (want host:port[*workers])");
}

/// Strict non-negative integer parse; returns false on empty input,
/// non-digits, or overflow past `max`.
bool parse_uint(const std::string& text, std::uint64_t max, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > max) return false;
  }
  out = value;
  return true;
}

}  // namespace

std::vector<HostSpec> parse_host_list(const std::string& text) {
  std::vector<HostSpec> hosts;
  std::size_t position = 0;
  while (position <= text.size()) {
    const std::size_t comma = text.find(',', position);
    const std::string entry =
        text.substr(position, comma == std::string::npos ? std::string::npos : comma - position);
    position = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (entry.empty()) bad_host_entry(entry, "empty entry");

    std::string body = entry;
    std::uint64_t workers = 1;
    const std::size_t star = body.find('*');
    if (star != std::string::npos) {
      const std::string workers_text = body.substr(star + 1);
      if (!parse_uint(workers_text, 1024, workers) || workers == 0) {
        bad_host_entry(entry, "worker count must be an integer in 1..1024");
      }
      body.resize(star);
    }
    const std::size_t colon = body.rfind(':');
    if (colon == std::string::npos) bad_host_entry(entry, "missing ':port'");
    const std::string host = body.substr(0, colon);
    if (host.empty()) bad_host_entry(entry, "empty host");
    std::uint64_t port = 0;
    if (!parse_uint(body.substr(colon + 1), 65535, port) || port == 0) {
      bad_host_entry(entry, "port must be an integer in 1..65535");
    }
    hosts.push_back({host, static_cast<std::uint16_t>(port), static_cast<std::size_t>(workers)});
  }
  if (hosts.empty()) throw std::invalid_argument("--hosts list is empty");
  return hosts;
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TransportFault parse_transport_fault(const std::string& text) {
  const auto bad = [&](const std::string& why) -> TransportFault {
    throw std::invalid_argument("bad transport fault '" + text + "': " + why +
                                " (want kind:shard[:attempts], kind in "
                                "connect|drop|corrupt|hbstall|delay)");
  };
  const std::size_t first = text.find(':');
  if (first == std::string::npos) return bad("missing ':shard'");
  const std::string kind_token = text.substr(0, first);
  std::string rest = text.substr(first + 1);
  std::uint64_t attempts = 1;
  const std::size_t second = rest.find(':');
  if (second != std::string::npos) {
    if (!parse_uint(rest.substr(second + 1), 1u << 20, attempts) || attempts == 0) {
      return bad("attempts must be a positive integer");
    }
    rest.resize(second);
  }
  std::uint64_t shard = 0;
  if (!parse_uint(rest, 1u << 20, shard)) return bad("shard must be a non-negative integer");

  TransportFault fault;
  if (kind_token == "connect") {
    fault.kind = TransportFault::Kind::kConnectRefuse;
  } else if (kind_token == "drop") {
    fault.kind = TransportFault::Kind::kDrop;
  } else if (kind_token == "corrupt") {
    fault.kind = TransportFault::Kind::kCorrupt;
  } else if (kind_token == "hbstall") {
    fault.kind = TransportFault::Kind::kHeartbeatStall;
  } else if (kind_token == "delay") {
    fault.kind = TransportFault::Kind::kDelay;
  } else {
    return bad("unknown kind '" + kind_token + "'");
  }
  fault.shard = static_cast<std::size_t>(shard);
  fault.attempts = static_cast<std::size_t>(attempts);
  return fault;
}

namespace {

/// Channel decorator applying one armed TransportFault to the byte
/// stream of the attempt it wraps.
class FaultyChannel final : public ShardChannel {
 public:
  FaultyChannel(std::unique_ptr<ShardChannel> inner, TransportFault fault)
      : inner_(std::move(inner)), fault_(fault) {
    if (fault_.kind == TransportFault::Kind::kHeartbeatStall) {
      // A never-readable fd the coordinator can park its poll() on once
      // the stream goes silent, so the watchdog fires on schedule
      // instead of the loop spinning hot.
      if (::pipe(stall_pipe_) != 0) stall_pipe_[0] = stall_pipe_[1] = -1;
    }
  }

  ~FaultyChannel() override {
    close_fd(stall_pipe_[0]);
    close_fd(stall_pipe_[1]);
  }

  int poll_fd() const noexcept override {
    if (tripped_ && fault_.kind == TransportFault::Kind::kHeartbeatStall && stall_pipe_[0] >= 0) {
      return stall_pipe_[0];
    }
    return inner_->poll_fd();
  }

  ChannelRead read_some(std::uint8_t* buffer, std::size_t capacity) override {
    switch (fault_.kind) {
      case TransportFault::Kind::kDrop: {
        if (tripped_) {
          inner_->abort();
          return {ChannelRead::Kind::kEof, 0, {}};
        }
        ChannelRead read = inner_->read_some(buffer, capacity);
        if (read.kind == ChannelRead::Kind::kData) {
          if (seen_ + read.bytes >= fault_.at_byte) {
            // Deliver only up to the cut so the stream dies mid-frame.
            read.bytes = fault_.at_byte > seen_ ? fault_.at_byte - seen_ : 0;
            tripped_ = true;
            if (read.bytes == 0) {
              inner_->abort();
              return {ChannelRead::Kind::kEof, 0, {}};
            }
          }
          seen_ += read.bytes;
        }
        return read;
      }
      case TransportFault::Kind::kCorrupt: {
        ChannelRead read = inner_->read_some(buffer, capacity);
        if (read.kind == ChannelRead::Kind::kData) {
          if (!tripped_ && seen_ <= fault_.at_byte && fault_.at_byte < seen_ + read.bytes) {
            buffer[fault_.at_byte - seen_] ^= 0x20;  // one flipped bit; checksum must catch it
            tripped_ = true;
          }
          seen_ += read.bytes;
        }
        return read;
      }
      case TransportFault::Kind::kHeartbeatStall: {
        if (tripped_) return {ChannelRead::Kind::kWouldBlock, 0, {}};
        ChannelRead read = inner_->read_some(buffer, capacity);
        if (read.kind == ChannelRead::Kind::kData) {
          if (seen_ + read.bytes >= fault_.at_byte) {
            const std::size_t deliver = fault_.at_byte > seen_ ? fault_.at_byte - seen_ : 0;
            tripped_ = true;  // stream goes silent from here; watchdog must fire
            seen_ += deliver;
            if (deliver == 0) return {ChannelRead::Kind::kWouldBlock, 0, {}};
            read.bytes = deliver;
            return read;
          }
          seen_ += read.bytes;
        }
        return read;
      }
      case TransportFault::Kind::kDelay: {
        // Trickle: tiny reads with a per-read pause, modeling a slow
        // link.  The shard still completes, just late.
        std::this_thread::sleep_for(std::chrono::milliseconds(fault_.delay_ms));
        ChannelRead read = inner_->read_some(buffer, std::min<std::size_t>(capacity, 64));
        if (read.kind == ChannelRead::Kind::kData) seen_ += read.bytes;
        return read;
      }
      case TransportFault::Kind::kConnectRefuse:
      case TransportFault::Kind::kNone:
        break;
    }
    return inner_->read_some(buffer, capacity);
  }

  std::string send_heartbeat(std::uint64_t sequence) override {
    // Beacons keep flowing during a receive stall — the fault models a
    // one-directional partition, the harder case for the watchdog.
    return inner_->send_heartbeat(sequence);
  }

  std::string abort() override { return inner_->abort(); }
  void complete() override { inner_->complete(); }

 private:
  std::unique_ptr<ShardChannel> inner_;
  TransportFault fault_;
  std::size_t seen_ = 0;   ///< bytes delivered to the coordinator so far
  bool tripped_ = false;   ///< the fault has fired
  int stall_pipe_[2] = {-1, -1};
};

}  // namespace

FaultyTransport::FaultyTransport(std::shared_ptr<ShardTransport> inner, TransportFault fault)
    : inner_(std::move(inner)), fault_(fault) {}

ShardStart FaultyTransport::start(const ShardAssignment& assignment) {
  const bool armed = fault_.kind != TransportFault::Kind::kNone &&
                     assignment.shard == fault_.shard && assignment.attempt < fault_.attempts;
  if (armed && fault_.kind == TransportFault::Kind::kConnectRefuse) {
    ShardStart refused;
    refused.error = endpoint() + ": connect: Connection refused (injected fault)";
    return refused;
  }
  ShardStart started = inner_->start(assignment);
  if (armed && started.channel != nullptr) {
    started.channel = std::make_unique<FaultyChannel>(std::move(started.channel), fault_);
  }
  return started;
}

// ---------------------------------------------------------------------------
// SigpipeGuard
// ---------------------------------------------------------------------------

SigpipeGuard::SigpipeGuard() {
  using Sigaction = struct sigaction;
  auto* saved = new Sigaction{};
  Sigaction ignore{};
  ignore.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore, saved);
  previous_ = saved;
}

SigpipeGuard::~SigpipeGuard() {
  using Sigaction = struct sigaction;
  auto* saved = static_cast<Sigaction*>(previous_);
  ::sigaction(SIGPIPE, saved, nullptr);
  delete saved;
}

}  // namespace lr

#include "runner/shard_server.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/shard_protocol.hpp"

namespace lr {

namespace {

using Clock = std::chrono::steady_clock;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

/// Per-connection state shared between the session's compute thread and
/// the server's stop() path.
struct ShardServer::Session {
  int fd = -1;
  std::atomic<bool> cancelled{false};  ///< abandon the session ASAP
  std::atomic<bool> done{false};       ///< shard-done frame sent
  std::mutex write_mutex;              ///< serializes records vs. beacons
  std::thread thread;

  /// Cancels the session: further writes fail immediately and blocked
  /// peers observe a closed connection.  Safe from any thread.
  void cancel() {
    cancelled.store(true);
    ::shutdown(fd, SHUT_RDWR);
  }

  /// Full write under the write mutex; MSG_NOSIGNAL because the server
  /// may be embedded in a process that does not ignore SIGPIPE.  A
  /// failed write cancels the session.
  bool send_bytes(const std::vector<std::uint8_t>& bytes) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + written, bytes.size() - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        cancel();
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    return true;
  }
};

ShardServer::ShardServer(ShardServerOptions options) : options_(std::move(options)) {
  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  struct addrinfo* addresses = nullptr;
  const std::string port_text = std::to_string(options_.port);
  const int resolve =
      ::getaddrinfo(options_.bind_address.c_str(), port_text.c_str(), &hints, &addresses);
  if (resolve != 0) {
    throw std::runtime_error("ShardServer: cannot resolve bind address '" +
                             options_.bind_address + "': " + ::gai_strerror(resolve));
  }
  std::string last_error = "no addresses";
  for (struct addrinfo* address = addresses; address != nullptr; address = address->ai_next) {
    listen_fd_ = ::socket(address->ai_family, address->ai_socktype, address->ai_protocol);
    if (listen_fd_ < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    if (::bind(listen_fd_, address->ai_addr, address->ai_addrlen) == 0 &&
        ::listen(listen_fd_, 64) == 0) {
      break;
    }
    last_error = std::string("bind/listen: ") + std::strerror(errno);
    close_fd(listen_fd_);
  }
  ::freeaddrinfo(addresses);
  if (listen_fd_ < 0) {
    throw std::runtime_error("ShardServer: cannot listen on " + options_.bind_address + ":" +
                             port_text + " (" + last_error + ")");
  }
  struct sockaddr_storage bound {};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound), &bound_len);
  if (bound.ss_family == AF_INET) {
    port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
  } else if (bound.ss_family == AF_INET6) {
    port_ = ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
  } else {
    port_ = options_.port;
  }
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::start() {
  if (started_) return;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ShardServer::stop() {
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  close_fd(listen_fd_);
  std::vector<std::shared_ptr<Session>> sessions;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (const auto& session : sessions) session->cancel();
  for (const auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
    close_fd(session->fd);
  }
}

void ShardServer::accept_loop() {
  while (!stopping_.load()) {
    // Reap finished sessions so a long-lived daemon's fd/thread footprint
    // stays proportional to the in-flight load, not its history.  The
    // accept loop is the only closer besides stop(), and stop() only
    // closes after this loop has exited, so each fd closes exactly once.
    {
      const std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (std::size_t i = 0; i < sessions_.size();) {
        if (sessions_[i]->done.load()) {
          if (sessions_[i]->thread.joinable()) sessions_[i]->thread.join();
          close_fd(sessions_[i]->fd);
          sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        ++i;
      }
    }
    struct pollfd pfd {
      listen_fd_, POLLIN, 0
    };
    const int ready = ::poll(&pfd, 1, 100);
    if (stopping_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(session);
    }
    session->thread = std::thread([this, session] { serve_session(session); });
  }
}

void ShardServer::serve_session(const std::shared_ptr<Session>& session) {
  const int fd = session->fd;
  bool completed = false;

  // ---- Phase 1: receive the shard request, deadline-bounded. ----------
  FrameParser parser;
  std::optional<Frame> request_frame;
  std::string refusal;
  const Clock::time_point request_deadline =
      Clock::now() + std::chrono::milliseconds(options_.request_timeout_ms);
  while (!request_frame && refusal.empty() && !session->cancelled.load()) {
    const auto remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(request_deadline - Clock::now())
            .count();
    if (remaining_ms <= 0) {
      refusal = "no shard request within " + std::to_string(options_.request_timeout_ms) + " ms";
      break;
    }
    struct pollfd pfd {
      fd, POLLIN, 0
    };
    const int ready = ::poll(&pfd, 1, static_cast<int>(std::min<long long>(remaining_ms, 200)));
    if (ready <= 0) continue;
    std::uint8_t buffer[65536];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      refusal = "coordinator closed before sending a shard request";
      break;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      refusal = std::string("recv: ") + std::strerror(errno);
      break;
    }
    try {
      parser.feed(buffer, static_cast<std::size_t>(n));
      if (auto frame = parser.next()) {
        if (frame->type != FrameType::kShardRequest) {
          refusal = "first frame must be a shard request";
        } else {
          request_frame = std::move(frame);
        }
      }
    } catch (const ShardProtocolError& error) {
      refusal = std::string("malformed request stream: ") + error.what();
    }
  }

  // ---- Phase 2: validate, refusing loudly on any mismatch. ------------
  std::vector<RunSpec> runs;
  if (refusal.empty() && request_frame) {
    const ShardRequestFrame& request = request_frame->request;
    if (request.version != kShardProtocolVersion) {
      refusal = "protocol version mismatch (coordinator " + std::to_string(request.version) +
                ", worker " + std::to_string(kShardProtocolVersion) + ")";
    } else {
      try {
        runs = SweepSpec::parse_string(request.spec_text).expand();
      } catch (const std::exception& error) {
        refusal = std::string("cannot parse sweep spec: ") + error.what();
      }
      if (refusal.empty() && runs.size() != request.total) {
        refusal = "spec expands to " + std::to_string(runs.size()) +
                  " runs but coordinator expected " + std::to_string(request.total);
      }
      if (refusal.empty() && (request.begin > request.end || request.end > runs.size())) {
        refusal = "shard range [" + std::to_string(request.begin) + ", " +
                  std::to_string(request.end) + ") exceeds the sweep's " +
                  std::to_string(runs.size()) + " runs";
      }
    }
  }
  if (!refusal.empty() || !request_frame) {
    if (!refusal.empty() && !session->cancelled.load()) {
      ShardErrorFrame error;
      error.message = refusal;
      session->send_bytes(encode_frame(error));
    }
    sessions_failed_.fetch_add(1);
    session->done.store(true);  // last: hands the fd to the reaper
    return;
  }

  const ShardRequestFrame request = request_frame->request;

  // ---- Phase 3: hello, then compute with a liveness watchdog. ---------
  HelloFrame hello;
  hello.shard = request.shard;
  hello.begin = request.begin;
  hello.end = request.end;
  hello.attempt = request.attempt;
  session->send_bytes(encode_frame(hello));

  const int heartbeat_ms = static_cast<int>(std::max<std::uint32_t>(request.heartbeat_ms, 1));
  const int liveness_ms =
      static_cast<int>(std::max<std::uint32_t>(request.liveness_timeout_ms, 1));
  std::atomic<long long> last_heard_ms{
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now().time_since_epoch())
          .count()};

  // The watchdog owns the read side: coordinator beacons reset the
  // liveness deadline; silence past it — or EOF, or a protocol error —
  // cancels the session so the compute loop unwinds at its next chunk
  // boundary or failed write.  It also sends this worker's own beacons,
  // so a chunk that takes longer than the coordinator's watchdog does
  // not read as a dead worker.
  // The watchdog inherits the phase-1 parser so a coordinator beacon
  // whose bytes straddled the request read is parsed, not lost.
  std::thread watchdog([&, session] {
    std::uint64_t beacon_sequence = 0;
    Clock::time_point next_beacon = Clock::now() + std::chrono::milliseconds(heartbeat_ms);
    // Drains every buffered frame; returns false on anything but a
    // coordinator beacon (only beacons are in contract mid-shard).
    const auto drain_beacons = [&]() -> bool {
      try {
        while (auto frame = parser.next()) {
          if (frame->type != FrameType::kHeartbeat || frame->heartbeat.from_coordinator != 1) {
            return false;
          }
          last_heard_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                                  Clock::now().time_since_epoch())
                                  .count());
        }
      } catch (const ShardProtocolError&) {
        return false;
      }
      return true;
    };
    if (!drain_beacons()) {
      session->cancel();
      return;
    }
    while (!session->done.load() && !session->cancelled.load()) {
      const Clock::time_point now = Clock::now();
      const long long now_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch()).count();
      if (now_ms - last_heard_ms.load() > liveness_ms) {
        session->cancel();  // coordinator presumed dead or partitioned
        break;
      }
      if (now >= next_beacon) {
        HeartbeatFrame beacon;
        beacon.from_coordinator = 0;
        beacon.sequence = beacon_sequence++;
        if (!session->send_bytes(encode_frame(beacon))) break;
        next_beacon = now + std::chrono::milliseconds(heartbeat_ms);
      }
      const auto until_beacon =
          std::chrono::duration_cast<std::chrono::milliseconds>(next_beacon - now).count();
      struct pollfd pfd {
        fd, POLLIN, 0
      };
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(std::clamp<long long>(until_beacon, 1, 100)));
      if (ready <= 0) continue;
      std::uint8_t buffer[4096];
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), MSG_DONTWAIT);
      if (n == 0) {
        session->cancel();  // coordinator went away
        break;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        session->cancel();
        break;
      }
      parser.feed(buffer, static_cast<std::size_t>(n));
      if (!drain_beacons()) {
        session->cancel();
        break;
      }
    }
  });

  // Shared-nothing execution with this session's own runner and cache,
  // chunked exactly like the fork/exec worker so records flow long
  // before the shard finishes.
  constexpr std::size_t kChunk = 16;
  bool failed = false;
  {
    const std::size_t threads = static_cast<std::size_t>(request.threads);
    const std::size_t cache_cap = static_cast<std::size_t>(request.cache_cap);
    const ScenarioRunner runner({.threads = threads == 0 ? 0 : threads,
                                 .cache_max_entries = cache_cap});
    SweepCache cache(cache_cap);
    std::size_t emitted = 0;
    for (std::uint64_t offset = request.begin; offset < request.end && !failed;
         offset += kChunk) {
      if (session->cancelled.load()) {
        failed = true;
        break;
      }
      const std::uint64_t stop = std::min<std::uint64_t>(offset + kChunk, request.end);
      const std::vector<RunSpec> slice(runs.begin() + static_cast<std::ptrdiff_t>(offset),
                                       runs.begin() + static_cast<std::ptrdiff_t>(stop));
      const std::vector<RunRecord> records = runner.run_all(slice, cache);
      for (std::size_t i = 0; i < records.size() && !failed; ++i) {
        RecordFrame frame;
        frame.global_index = offset + i;
        frame.record = records[i];
        if (!session->send_bytes(encode_frame(frame))) failed = true;
        ++emitted;
      }
    }
    if (!failed && !session->cancelled.load()) {
      ShardDoneFrame done;
      done.records_emitted = emitted;
      done.cache = {cache.entries(), cache.hits(), cache.misses(), cache.evictions()};
      if (session->send_bytes(encode_frame(done))) completed = true;
    }
  }

  if (completed) {
    sessions_completed_.fetch_add(1);
  } else {
    sessions_failed_.fetch_add(1);
  }
  session->done.store(true);  // last: stops the watchdog, hands the fd over
  if (watchdog.joinable()) watchdog.join();
}

// ---------------------------------------------------------------------------
// shard-server subcommand
// ---------------------------------------------------------------------------

namespace {

int server_argv_error(const std::string& why) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: lr_cli shard-server --listen <port> [--bind <address>]\n"
               "Serves sweep shards to a remote `lr_cli sweep --hosts` coordinator over the\n"
               "v3 shard protocol; binds 127.0.0.1 unless --bind says otherwise.\n",
               why.c_str());
  return 2;
}

}  // namespace

int shard_server_main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "shard-server") != 0) {
    return server_argv_error("shard_server_main invoked without the shard-server subcommand");
  }
  ShardServerOptions options;
  bool listen_seen = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return server_argv_error("flag '" + flag + "' is missing its value");
    const std::string value = argv[++i];
    if (flag == "--bind") {
      if (value.empty()) return server_argv_error("--bind needs a non-empty address");
      options.bind_address = value;
    } else if (flag == "--listen") {
      char* end = nullptr;
      const unsigned long port = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || port == 0 || port > 65535) {
        return server_argv_error("--listen needs a port in 1..65535, got '" + value + "'");
      }
      options.port = static_cast<std::uint16_t>(port);
      listen_seen = true;
    } else {
      return server_argv_error("unknown flag '" + flag + "'");
    }
  }
  if (!listen_seen) return server_argv_error("--listen <port> is required");

  // Serve until SIGINT/SIGTERM; the mask is installed before the server
  // threads spawn so they inherit it and sigwait below is race-free.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  ::pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  try {
    ShardServer server(options);
    server.start();
    std::printf("shard-server listening on %s:%u\n", options.bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    int signal_number = 0;
    ::sigwait(&signals, &signal_number);
    server.stop();
    std::fprintf(stderr, "shard-server: shutting down (signal %d), served %llu session(s)\n",
                 signal_number,
                 static_cast<unsigned long long>(server.sessions_completed()));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}

}  // namespace lr

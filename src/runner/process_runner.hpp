#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "runner/shard_transport.hpp"

/// \file process_runner.hpp
/// The multi-process sweep backend: shards an expanded SweepSpec across
/// shared-nothing `sweep-worker` child processes and merges their record
/// streams back into one SweepReport that is byte-identical to the
/// in-process ScenarioRunner's at every worker count.
///
/// Dataplane (docs/ARCHITECTURE.md §"Process-shard dataplane"):
///
///   1. The parent expands the sweep, splits the run list into
///      `process_workers` contiguous shards (shard_ranges()), and
///      fork/execs one worker per shard.  Each worker is a fresh process
///      with its own SweepCache, thread pools, and address space — a
///      crash takes down one shard's attempt, never the sweep.
///   2. The canonical spec text (format_sweep_spec()) is piped to each
///      worker's stdin; the worker re-expands it and verifies the run
///      count, so parent and workers provably agree on what global run
///      index #k means.
///   3. Workers stream length-prefixed record frames
///      (runner/shard_protocol.hpp) back over their stdout pipe in
///      ascending global-index order; the parent multiplexes all pipes
///      with poll() and writes each record into its expansion slot.
///   4. Crash isolation: a worker that exits nonzero, dies on a signal,
///      truncates a frame, violates the protocol, or stalls past the
///      inactivity watchdog is killed, reaped, and its shard is retried
///      from scratch in a fresh process, up to RunnerOptions::
///      worker_retries extra attempts.  Because every record is a pure
///      function of its RunSpec, a retry re-emits byte-identical records
///      and the merge converges regardless of which attempt served a
///      shard.  A shard that exhausts its budget fails the whole sweep
///      loudly (std::runtime_error carrying per-shard diagnostics).
///
/// Fault injection (test hook): the LR_TEST_WORKER_FAULT environment
/// variable — `exit:<shard>`, `segv:<shard>`, `truncate:<shard>`,
/// `stall:<shard>`, each with an optional `:<attempts>` suffix (default
/// 1) — makes sweep-worker inject that fault mid-shard on its first
/// `<attempts>` attempts, which is how tests/process_runner_test.cpp
/// drives the retry-then-success and bounded-retry-then-loud-failure
/// batteries.  LR_TEST_WORKER_TIMEOUT_MS overrides the stall watchdog.

namespace lr {

// ShardRange, shard_ranges(), and ShardDiagnostics moved to
// runner/shard_transport.hpp (re-exported by the include above) when the
// dataplane grew transport-agnostic; this header keeps providing them to
// its historical users.

/// Executes sweeps by sharding them across `sweep-worker` child
/// processes (see the file comment for the dataplane).  Configured by
/// the same RunnerOptions as the in-process ScenarioRunner:
/// `process_workers` is the worker-process count, `threads` the thread
/// count *inside* each worker, `worker_retries` / `worker_timeout_ms`
/// the crash-isolation budget.  Tables are byte-identical to
/// ScenarioRunner's for every option value by construction.
class ProcessShardRunner {
 public:
  /// Creates a runner.  `worker_command` is the executable fork/exec'd
  /// as `<worker_command> sweep-worker ...`; empty means this process's
  /// own binary (/proc/self/exe), which is the normal arrangement — any
  /// binary that forwards its `sweep-worker` argv to sweep_worker_main()
  /// can act as its own worker.  Throws std::invalid_argument when
  /// options.process_workers is 0 (that value means "in-process"; use
  /// ScenarioRunner).
  explicit ProcessShardRunner(RunnerOptions options, std::string worker_command = {});

  /// Expands `spec`, runs every shard to completion (retrying failed
  /// workers within budget), and returns the merged report; records are
  /// in expansion order and byte-identical to the in-process runner's.
  /// The report's cache stats are the sum over the final per-shard
  /// attempts.  Throws std::runtime_error with per-shard diagnostics
  /// when any shard exhausts its retry budget — never hangs, never
  /// silently drops runs.
  SweepReport run(const SweepSpec& spec);

  /// Per-shard attempt/failure log of the most recent run() call (valid
  /// after both success and failure).
  const std::vector<ShardDiagnostics>& shard_diagnostics() const noexcept {
    return diagnostics_;
  }

  /// The worker count run() will use for a sweep of `runs` runs
  /// (process_workers clamped to the run count).
  std::size_t resolved_workers(std::size_t runs) const noexcept;

 private:
  RunnerOptions options_;
  std::string worker_command_;
  std::vector<ShardDiagnostics> diagnostics_;
};

/// Entry point of the `sweep-worker` subcommand: parses the internal
/// argv contract (`sweep-worker --shard I --range B:E --total R
/// --attempt A [--threads T] [--cache-cap C]`), reads the canonical
/// sweep-spec text from stdin, executes global runs [B, E), and streams
/// hello / record / shard-done frames on stdout.  Returns the process
/// exit code.  Refuses to run (exit 2, clear stderr message) unless the
/// LR_SWEEP_WORKER environment variable marks the invocation as coming
/// from a ProcessShardRunner parent — humans get pointed at
/// `lr_cli sweep --processes N` instead of a screenful of binary frames.
int sweep_worker_main(int argc, char** argv);

}  // namespace lr

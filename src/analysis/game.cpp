#include "analysis/game.hpp"

#include <algorithm>
#include <sstream>

#include "automata/executor.hpp"
#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/newpr.hpp"
#include "core/pr.hpp"

namespace lr {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kFullReversal:
      return "FR";
    case Strategy::kPartialReversal:
      return "PR";
    case Strategy::kNewPR:
      return "NewPR";
  }
  return "?";
}

const char* scheduler_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kLowestId:
      return "lowest-id";
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kFarthestFirst:
      return "farthest-first";
  }
  return "?";
}

std::uint64_t CostProfile::max_node_cost() const {
  if (node_cost.empty()) return 0;
  return *std::max_element(node_cost.begin(), node_cost.end());
}

namespace {

template <typename A>
CostProfile run_strategy(A automaton, Strategy strategy, SchedulerKind scheduler,
                         std::uint64_t seed, const RunOptions& options) {
  CostProfile profile;
  profile.strategy = strategy;
  profile.node_cost.assign(automaton.graph().num_nodes(), 0);

  const auto observer = [&profile](const A&, NodeId u) { ++profile.node_cost[u]; };
  RunResult result;
  switch (scheduler) {
    case SchedulerKind::kLowestId: {
      LowestIdScheduler s;
      result = run_to_quiescence(automaton, s, observer, options);
      break;
    }
    case SchedulerKind::kRandom: {
      RandomScheduler s(seed);
      result = run_to_quiescence(automaton, s, observer, options);
      break;
    }
    case SchedulerKind::kRoundRobin: {
      RoundRobinScheduler s;
      result = run_to_quiescence(automaton, s, observer, options);
      break;
    }
    case SchedulerKind::kFarthestFirst: {
      FarthestFirstScheduler s;
      result = run_to_quiescence(automaton, s, observer, options);
      break;
    }
  }
  profile.social_cost = result.steps;
  profile.edge_reversals = result.edge_reversals;
  profile.converged = result.quiescent && result.destination_oriented;
  if constexpr (std::is_same_v<A, NewPRAutomaton>) {
    profile.dummy_steps = automaton.dummy_steps();
  }
  return profile;
}

}  // namespace

CostProfile measure_cost(const Instance& instance, Strategy strategy, SchedulerKind scheduler,
                         std::uint64_t seed, const RunOptions& options) {
  switch (strategy) {
    case Strategy::kFullReversal:
      return run_strategy(FullReversalAutomaton(instance), strategy, scheduler, seed, options);
    case Strategy::kPartialReversal:
      return run_strategy(OneStepPRAutomaton(instance), strategy, scheduler, seed, options);
    case Strategy::kNewPR:
      return run_strategy(NewPRAutomaton(instance), strategy, scheduler, seed, options);
  }
  return {};
}

std::vector<std::uint64_t> measure_profile_costs(const Instance& instance,
                                                 const std::vector<NodeStrategy>& profile) {
  HybridStrategyAutomaton automaton(instance, profile);
  std::vector<std::uint64_t> costs(instance.graph.num_nodes(), 0);
  LowestIdScheduler scheduler;
  run_to_quiescence(automaton, scheduler,
                    [&costs](const HybridStrategyAutomaton&, NodeId u) { ++costs[u]; });
  return costs;
}

NashCheckResult check_nash_equilibrium(const Instance& instance,
                                       const std::vector<NodeStrategy>& profile) {
  const std::vector<std::uint64_t> base_costs = measure_profile_costs(instance, profile);
  NashCheckResult result;
  for (NodeId u = 0; u < instance.graph.num_nodes(); ++u) {
    if (u == instance.destination) continue;  // the destination never plays
    std::vector<NodeStrategy> deviation = profile;
    deviation[u] = deviation[u] == NodeStrategy::kFullReversal
                       ? NodeStrategy::kPartialReversal
                       : NodeStrategy::kFullReversal;
    const std::vector<std::uint64_t> deviated_costs =
        measure_profile_costs(instance, deviation);
    if (deviated_costs[u] < base_costs[u]) {
      result.is_equilibrium = false;
      result.improving_node = u;
      result.cost_before = base_costs[u];
      result.cost_after = deviated_costs[u];
      return result;
    }
  }
  return result;
}

bool pareto_dominates(const CostProfile& a, const CostProfile& b) {
  if (a.node_cost.size() != b.node_cost.size()) return false;
  for (std::size_t i = 0; i < a.node_cost.size(); ++i) {
    if (a.node_cost[i] > b.node_cost[i]) return false;
  }
  return true;
}

std::string compare_line(const Instance& instance, const CostProfile& fr, const CostProfile& pr,
                         const CostProfile& newpr) {
  std::ostringstream oss;
  oss << instance.name << ": FR=" << fr.social_cost << " PR=" << pr.social_cost
      << " NewPR=" << newpr.social_cost << " (dummy=" << newpr.dummy_steps << ")"
      << " ratio(FR/PR)=";
  if (pr.social_cost == 0) {
    oss << "inf";
  } else {
    oss << static_cast<double>(fr.social_cost) / static_cast<double>(pr.social_cost);
  }
  return oss.str();
}

}  // namespace lr

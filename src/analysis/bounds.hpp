#pragma once

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"

/// \file bounds.hpp
/// Theoretical work bounds from the literature the paper builds on
/// (Busch–Surapaneni–Tirthapura; Busch–Tirthapura; Welch–Walter):
///
///  * FR and PR both have worst-case total work Θ(n_b²), where n_b is the
///    number of nodes with no initial path to the destination.
///  * On the away-oriented chain, FR performs exactly
///    n_b(n_b+1)/2 node reversals while PR performs exactly n_b.
///
/// Experiment E2 regenerates these series; this header provides the n_b
/// computation and the closed-form envelopes to compare against.

namespace lr {

/// n_b of an instance: nodes with no directed path to the destination in
/// the initial orientation.
std::size_t count_bad_nodes(const Instance& instance);

/// Exact FR work on the away-oriented chain with n_b bad nodes:
/// n_b (n_b + 1) / 2.
constexpr std::uint64_t fr_chain_work(std::uint64_t nb) { return nb * (nb + 1) / 2; }

/// Exact PR work on the away-oriented chain with n_b bad nodes: n_b (one
/// reversal wave).
constexpr std::uint64_t pr_chain_work(std::uint64_t nb) { return nb; }

/// Upper envelope for any execution of FR or PR (Welch–Walter Θ(n_b²)
/// analysis): c · n_b² with the standard constant c = 1 for FR on the chain
/// is tight; we use 2·n_b² + n_b as a conservative ceiling for assertions.
constexpr std::uint64_t quadratic_work_ceiling(std::uint64_t nb) { return 2 * nb * nb + nb; }

/// Least-squares exponent fit of work = a · n_b^k over a series of
/// (n_b, work) samples — used by E2 to report the empirical growth
/// exponent (≈2 for FR on chains, ≈1 for PR on chains).
double fit_growth_exponent(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& samples);

}  // namespace lr

#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/generators.hpp"

/// \file rounds.hpp
/// Greedy-round ("time complexity") analysis of link reversal.
///
/// The work experiments (E2/E3) count node reversals; the *time* measure in
/// the link-reversal literature counts greedy rounds: in each round every
/// current sink fires simultaneously (the paper's reverse(S) with maximal
/// S).  This module records per-round histories — how many sinks fired, how
/// many edges flipped, how many nodes still lack a route — giving the
/// convergence *profile*, not just the endpoint.

namespace lr {

enum class RoundStrategy : std::uint8_t { kPartialReversal, kFullReversal };

struct RoundRecord {
  std::uint64_t round = 0;            ///< 1-based round index
  std::uint64_t sinks_fired = 0;      ///< |S| of this round
  std::uint64_t edges_reversed = 0;   ///< edge flips caused by the round
  std::uint64_t bad_nodes_after = 0;  ///< nodes without a route afterwards
};

struct RoundHistory {
  RoundStrategy strategy = RoundStrategy::kPartialReversal;
  std::vector<RoundRecord> rounds;
  bool converged = false;

  std::uint64_t total_rounds() const { return rounds.size(); }
  std::uint64_t total_node_steps() const;
  /// Largest |S| over the execution — the available parallelism.
  std::uint64_t peak_parallelism() const;
  /// Rounds until the bad-node count first reaches zero (may be smaller
  /// than total_rounds(): the DAG can become destination-oriented while
  /// stragglers still need to fire — never, actually: oriented == no sinks;
  /// kept for the CSV schema and asserted equal in tests).
  std::uint64_t rounds_to_routes() const;
};

/// Runs the greedy (maximal set) execution of the chosen strategy and
/// records the per-round history.
RoundHistory run_greedy_rounds(const Instance& instance, RoundStrategy strategy,
                               std::uint64_t max_rounds = 1'000'000);

/// Writes "round,sinks_fired,edges_reversed,bad_nodes_after" rows.
void write_round_history_csv(std::ostream& os, const RoundHistory& history);

}  // namespace lr

#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace lr {

std::uint64_t WorkStats::max_steps_per_node() const {
  if (steps_per_node.empty()) return 0;
  return *std::max_element(steps_per_node.begin(), steps_per_node.end());
}

double WorkStats::mean_steps_per_node() const {
  if (steps_per_node.empty()) return 0.0;
  return static_cast<double>(total_steps) / static_cast<double>(steps_per_node.size());
}

std::string WorkStats::summary() const {
  std::ostringstream oss;
  oss << "WorkStats(total=" << total_steps << ", max/node=" << max_steps_per_node()
      << ", mean/node=" << mean_steps_per_node() << ", edge_reversals=" << edge_reversals
      << ", rounds=" << rounds << ")";
  return oss.str();
}

void Aggregate::add(double x) {
  if (count == 0) {
    min = max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  sum += x;
  sum_sq += x * x;
}

double Aggregate::variance() const {
  if (count < 2) return 0.0;
  const double m = mean();
  return sum_sq / static_cast<double>(count) - m * m;
}

double Aggregate::stddev() const { return std::sqrt(std::max(0.0, variance())); }

}  // namespace lr

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "automata/executor.hpp"
#include "core/hybrid.hpp"
#include "graph/generators.hpp"

/// \file game.hpp
/// The Charron-Bost–Welch–Widder game-theoretic comparison of link-reversal
/// strategies ("Link reversal: how to play better to work less"), which the
/// paper cites to explain why PR beats FR in practice despite identical
/// worst-case bounds.
///
/// Each node's *strategy* is how much it reverses when it fires (all edges
/// for FR; the non-listed edges for PR; the parity-selected constant set
/// for NewPR).  A node's *cost* is the number of reverse actions it takes
/// before global quiescence; the *social cost* is the sum.  We measure
/// these profiles per instance, per strategy, per scheduler, and report the
/// comparisons E3 relies on:
///   * social_cost(PR) ≤ social_cost(FR) on every tested instance,
///   * NewPR = PR + dummy steps.

namespace lr {

enum class Strategy : std::uint8_t { kFullReversal, kPartialReversal, kNewPR };

const char* strategy_name(Strategy s);

enum class SchedulerKind : std::uint8_t { kLowestId, kRandom, kRoundRobin, kFarthestFirst };

const char* scheduler_name(SchedulerKind k);

/// Work profile of one strategy on one instance under one scheduler.
struct CostProfile {
  Strategy strategy = Strategy::kPartialReversal;
  std::vector<std::uint64_t> node_cost;  ///< reverse actions per node
  std::uint64_t social_cost = 0;         ///< total actions (the game's objective)
  std::uint64_t dummy_steps = 0;         ///< NewPR only
  std::uint64_t edge_reversals = 0;
  bool converged = false;

  std::uint64_t max_node_cost() const;
};

/// Runs `strategy` on `instance` under `scheduler` and returns the profile.
/// `options` bounds the execution (the scenario runner passes its per-run
/// step budget through here so swept and standalone runs behave alike).
CostProfile measure_cost(const Instance& instance, Strategy strategy, SchedulerKind scheduler,
                         std::uint64_t seed, const RunOptions& options = {});

/// True iff profile `a` weakly Pareto-dominates `b`: every node's cost in
/// `a` is <= its cost in `b`.
bool pareto_dominates(const CostProfile& a, const CostProfile& b);

/// Human-readable one-line comparison for harness output.
std::string compare_line(const Instance& instance, const CostProfile& fr, const CostProfile& pr,
                         const CostProfile& newpr);

// ---------------------------------------------------------------------------
// The strategy game proper (per-node strategy profiles; hybrid.hpp)
// ---------------------------------------------------------------------------

/// Runs a strategy profile to quiescence (lowest-id scheduler; per-node
/// work is schedule-independent, so the scheduler choice is immaterial and
/// tested to be) and returns each node's cost.
std::vector<std::uint64_t> measure_profile_costs(const Instance& instance,
                                                 const std::vector<NodeStrategy>& profile);

struct NashCheckResult {
  bool is_equilibrium = true;
  NodeId improving_node = kNoNode;        ///< a node whose deviation pays off
  std::uint64_t cost_before = 0;          ///< its cost under the profile
  std::uint64_t cost_after = 0;           ///< its cost after deviating
};

/// Checks whether `profile` is a Nash equilibrium of the reversal game on
/// `instance`: no single node can strictly lower its own cost by switching
/// its strategy (FR <-> PR).  O(n) full executions.
NashCheckResult check_nash_equilibrium(const Instance& instance,
                                       const std::vector<NodeStrategy>& profile);

}  // namespace lr

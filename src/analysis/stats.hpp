#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"

/// \file stats.hpp
/// Work and convergence statistics for link-reversal executions — the
/// measurement substrate behind experiments E2 (Θ(n_b²) bound), E3 (social
/// cost), E4 (dummy overhead) and E6 (convergence).
///
/// The complexity measure of the paper and the literature it cites is the
/// number of *node reversals* ("the total number of reversals performed by
/// all nodes"); we additionally track single-edge reversals and greedy
/// rounds.

namespace lr {

/// Per-execution work profile.
struct WorkStats {
  std::vector<std::uint64_t> steps_per_node;  ///< reverse actions fired per node
  std::uint64_t total_steps = 0;              ///< sum of steps_per_node
  std::uint64_t edge_reversals = 0;           ///< individual edge flips
  std::uint64_t rounds = 0;                   ///< greedy rounds (set executions only)

  std::uint64_t max_steps_per_node() const;
  double mean_steps_per_node() const;

  /// Adds one fired action for node u.
  void record_step(NodeId u) {
    if (u >= steps_per_node.size()) steps_per_node.resize(u + 1, 0);
    ++steps_per_node[u];
    ++total_steps;
  }

  std::string summary() const;
};

/// Accumulates per-node work over an execution; usable as a
/// run_to_quiescence observer via `observer()`.
class WorkRecorder {
 public:
  explicit WorkRecorder(std::size_t num_nodes) { stats_.steps_per_node.resize(num_nodes, 0); }

  /// Single-step observer.
  template <typename A>
  void on_step(const A& /*automaton*/, NodeId u) {
    stats_.record_step(u);
  }

  /// Set-step observer.
  template <typename A>
  void on_set_step(const A& /*automaton*/, const std::vector<NodeId>& s) {
    for (const NodeId u : s) stats_.record_step(u);
    ++stats_.rounds;
  }

  const WorkStats& stats() const noexcept { return stats_; }
  WorkStats& stats() noexcept { return stats_; }

 private:
  WorkStats stats_;
};

/// Simple online aggregate over repeated trials (per experiment cell).
struct Aggregate {
  std::uint64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double x);
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  double variance() const;
  double stddev() const;
};

}  // namespace lr

#include "analysis/bounds.hpp"

#include <cmath>

#include "graph/digraph_algos.hpp"

namespace lr {

std::size_t count_bad_nodes(const Instance& instance) {
  const Orientation o = instance.make_orientation();
  return bad_nodes(o, instance.destination).size();
}

double fit_growth_exponent(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& samples) {
  // Linear regression of log(work) against log(n_b); slope = exponent.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const auto& [nb, work] : samples) {
    if (nb == 0 || work == 0) continue;
    const double x = std::log(static_cast<double>(nb));
    const double y = std::log(static_cast<double>(work));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace lr

#include "analysis/rounds.hpp"

#include <algorithm>
#include <ostream>

#include "automata/scheduler.hpp"
#include "core/full_reversal.hpp"
#include "core/pr.hpp"
#include "graph/digraph_algos.hpp"

namespace lr {

std::uint64_t RoundHistory::total_node_steps() const {
  std::uint64_t total = 0;
  for (const RoundRecord& r : rounds) total += r.sinks_fired;
  return total;
}

std::uint64_t RoundHistory::peak_parallelism() const {
  std::uint64_t peak = 0;
  for (const RoundRecord& r : rounds) peak = std::max(peak, r.sinks_fired);
  return peak;
}

std::uint64_t RoundHistory::rounds_to_routes() const {
  for (const RoundRecord& r : rounds) {
    if (r.bad_nodes_after == 0) return r.round;
  }
  return rounds.size();
}

namespace {

template <typename A>
RoundHistory run_rounds(A automaton, RoundStrategy strategy, std::uint64_t max_rounds) {
  RoundHistory history;
  history.strategy = strategy;
  MaximalSetScheduler scheduler;
  std::uint64_t reversals_before = automaton.orientation().reversal_count();
  for (std::uint64_t round = 1; round <= max_rounds; ++round) {
    const auto action = scheduler.choose(automaton);
    if (!action) {
      history.converged = true;
      break;
    }
    automaton.apply(*action);
    RoundRecord record;
    record.round = round;
    record.sinks_fired = action->size();
    const std::uint64_t reversals_now = automaton.orientation().reversal_count();
    record.edges_reversed = reversals_now - reversals_before;
    reversals_before = reversals_now;
    record.bad_nodes_after =
        bad_nodes(automaton.orientation(), automaton.destination()).size();
    history.rounds.push_back(record);
  }
  return history;
}

}  // namespace

RoundHistory run_greedy_rounds(const Instance& instance, RoundStrategy strategy,
                               std::uint64_t max_rounds) {
  if (strategy == RoundStrategy::kPartialReversal) {
    return run_rounds(PRAutomaton(instance), strategy, max_rounds);
  }
  return run_rounds(FullReversalSetAutomaton(instance), strategy, max_rounds);
}

void write_round_history_csv(std::ostream& os, const RoundHistory& history) {
  os << "round,sinks_fired,edges_reversed,bad_nodes_after\n";
  for (const RoundRecord& r : history.rounds) {
    os << r.round << ',' << r.sinks_fired << ',' << r.edges_reversed << ','
       << r.bad_nodes_after << '\n';
  }
}

}  // namespace lr

#include "graph/embedding.hpp"

#include <stdexcept>

#include "graph/digraph_algos.hpp"

namespace lr {

LeftRightEmbedding::LeftRightEmbedding(const Orientation& initial) {
  const auto order = topological_order(initial);
  if (!order) {
    throw std::invalid_argument("LeftRightEmbedding: initial orientation must be acyclic");
  }
  position_.resize(order->size());
  for (std::uint32_t pos = 0; pos < order->size(); ++pos) {
    position_[(*order)[pos]] = pos;
  }
}

}  // namespace lr

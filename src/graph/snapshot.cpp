#include "graph/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace lr {
namespace {

/// Fixed 64-byte file header.  All multi-byte fields are host-endian (see
/// the file comment in snapshot.hpp: cache artifact, not interchange).
struct SnapshotHeader {
  char magic[8];               ///< kSnapshotMagic
  std::uint32_t version;       ///< kSnapshotVersion
  std::uint32_t reserved;      ///< 0
  std::uint64_t num_nodes;     ///< n
  std::uint64_t num_edges;     ///< m
  std::uint64_t destination;   ///< Instance::destination
  std::uint64_t name_bytes;    ///< unpadded length of Instance::name
  std::uint64_t payload_bytes; ///< total bytes after the header
  std::uint64_t checksum;      ///< FNV-1a over the payload bytes
};
static_assert(sizeof(SnapshotHeader) == 64, "snapshot header layout drifted");

constexpr char kSnapshotMagic[8] = {'L', 'R', 'S', 'N', 'A', 'P', '\n', '\0'};

/// Incremental FNV-1a, matching CsrGraph::fingerprint's constants.
struct Fnv1a {
  std::uint64_t h = 14695981039346656037ull;
  void mix(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
};

/// Rounds `bytes` up to the file format's 8-byte section alignment.
constexpr std::uint64_t pad8(std::uint64_t bytes) { return (bytes + 7) & ~std::uint64_t{7}; }

/// Payload section extents for a snapshot of n nodes / m edges with a
/// `name_bytes`-byte label, in file order.  Kept in one place so the
/// writer and the loader can never disagree.
struct Extents {
  std::uint64_t name, offsets, split, nbr, edge, mirror, part_nbr, part_pos, senses;

  Extents(std::uint64_t n, std::uint64_t m, std::uint64_t name_len)
      : name(pad8(name_len)),
        offsets(pad8((n + 1) * sizeof(CsrPos))),
        split(pad8(n * sizeof(CsrPos))),
        nbr(pad8(2 * m * sizeof(NodeId))),
        edge(pad8(2 * m * sizeof(EdgeId))),
        mirror(pad8(2 * m * sizeof(CsrPos))),
        part_nbr(pad8(2 * m * sizeof(NodeId))),
        part_pos(pad8(2 * m * sizeof(CsrPos))),
        senses(pad8(m * sizeof(EdgeSense))) {}

  std::uint64_t total() const {
    return name + offsets + split + nbr + edge + mirror + part_nbr + part_pos + senses;
  }
};

[[noreturn]] void reject(const std::string& path, const char* why) {
  throw std::runtime_error("snapshot: " + path + ": " + why);
}

/// Streams one padded section into `out` while folding it into `sum`.
void write_section(std::ofstream& out, Fnv1a& sum, const void* data, std::uint64_t bytes) {
  static constexpr char kZeros[8] = {};
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  sum.mix(data, bytes);
  const std::uint64_t padding = pad8(bytes) - bytes;
  out.write(kZeros, static_cast<std::streamsize>(padding));
  sum.mix(kZeros, padding);
}

}  // namespace

void save_snapshot(const std::string& path, const Instance& instance, const CsrGraph& csr) {
  const std::size_t n = csr.num_nodes();
  const std::size_t m = csr.num_edges();
  if (instance.graph.num_nodes() != n || instance.graph.num_edges() != m ||
      instance.senses.size() != m) {
    throw std::invalid_argument("save_snapshot: instance and CSR snapshot disagree");
  }

  // Same-directory temp file so the final rename is atomic (rename across
  // filesystems is not); pid-suffixed so racing sweep shards never share
  // a temp path.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) reject(path, "cannot open temp file for writing");

  SnapshotHeader header = {};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = kSnapshotVersion;
  header.num_nodes = n;
  header.num_edges = m;
  header.destination = instance.destination;
  header.name_bytes = instance.name.size();
  header.payload_bytes = Extents(n, m, instance.name.size()).total();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));

  Fnv1a sum;
  write_section(out, sum, instance.name.data(), instance.name.size());
  write_section(out, sum, csr.raw_offsets().data(), (n + 1) * sizeof(CsrPos));
  write_section(out, sum, csr.raw_splits().data(), n * sizeof(CsrPos));
  write_section(out, sum, csr.raw_neighbors().data(), 2 * m * sizeof(NodeId));
  write_section(out, sum, csr.raw_edges().data(), 2 * m * sizeof(EdgeId));
  write_section(out, sum, csr.raw_mirrors().data(), 2 * m * sizeof(CsrPos));
  write_section(out, sum, csr.raw_partition_neighbors().data(), 2 * m * sizeof(NodeId));
  write_section(out, sum, csr.raw_partition_positions().data(), 2 * m * sizeof(CsrPos));
  write_section(out, sum, csr.initial_senses().data(), m * sizeof(EdgeSense));

  // Patch the now-known checksum into the header and publish.
  header.checksum = sum.h;
  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.close();
  if (!out) {
    std::remove(tmp.c_str());
    reject(path, "write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    reject(path, "rename into place failed");
  }
}

Snapshot Snapshot::load(const std::string& path, bool verify_checksum) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) reject(path, "cannot open");
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    reject(path, "cannot stat");
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < sizeof(SnapshotHeader)) {
    ::close(fd);
    reject(path, "truncated (shorter than the header)");
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (map == MAP_FAILED) reject(path, "mmap failed");

  Snapshot snap;
  snap.map_ = map;
  snap.map_bytes_ = file_bytes;
  // From here every rejection unmaps via ~Snapshot when the exception
  // unwinds — validation failures must not leak the mapping.

  SnapshotHeader header;
  std::memcpy(&header, map, sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    reject(path, "bad magic (not a snapshot file)");
  }
  if (header.version != kSnapshotVersion) reject(path, "unsupported snapshot version");

  const std::uint64_t n = header.num_nodes;
  const std::uint64_t m = header.num_edges;
  if (2 * m >= kCsrPosLimit) reject(path, "edge count exceeds the 32-bit CSR position space");
  const Extents ext(n, m, header.name_bytes);
  if (header.name_bytes > header.payload_bytes || header.payload_bytes != ext.total()) {
    reject(path, "header extents are inconsistent");
  }
  if (file_bytes != sizeof(SnapshotHeader) + header.payload_bytes) {
    reject(path, "file size disagrees with the header (truncated or trailing garbage)");
  }

  const char* payload = static_cast<const char*>(map) + sizeof(SnapshotHeader);
  if (verify_checksum) {
    Fnv1a sum;
    sum.mix(payload, header.payload_bytes);
    if (sum.h != header.checksum) reject(path, "payload checksum mismatch (corrupt file)");
  }

  // Bind the borrowed views.  Every section starts 8-byte aligned (the
  // header is 64 bytes, sections are padded), so the reinterpret_casts
  // below are aligned for their 4-byte element types.
  const char* p = payload;
  snap.name_.assign(p, header.name_bytes);
  p += ext.name;
  CsrGraph::BorrowedArrays arrays;
  arrays.num_nodes = n;
  arrays.offsets = {reinterpret_cast<const CsrPos*>(p), static_cast<std::size_t>(n + 1)};
  p += ext.offsets;
  arrays.split = {reinterpret_cast<const CsrPos*>(p), static_cast<std::size_t>(n)};
  p += ext.split;
  arrays.nbr = {reinterpret_cast<const NodeId*>(p), static_cast<std::size_t>(2 * m)};
  p += ext.nbr;
  arrays.edge = {reinterpret_cast<const EdgeId*>(p), static_cast<std::size_t>(2 * m)};
  p += ext.edge;
  arrays.mirror = {reinterpret_cast<const CsrPos*>(p), static_cast<std::size_t>(2 * m)};
  p += ext.mirror;
  arrays.part_nbr = {reinterpret_cast<const NodeId*>(p), static_cast<std::size_t>(2 * m)};
  p += ext.part_nbr;
  arrays.part_pos = {reinterpret_cast<const CsrPos*>(p), static_cast<std::size_t>(2 * m)};
  p += ext.part_pos;
  arrays.senses = {reinterpret_cast<const EdgeSense*>(p), static_cast<std::size_t>(m)};

  try {
    snap.csr_ = CsrGraph::borrow(arrays);
  } catch (const std::invalid_argument&) {
    // borrow() re-derives size consistency; a checksum-clean file can
    // still fail it if offsets.back() != 2m (contents lie about extents).
    reject(path, "array contents are inconsistent with the header");
  }
  snap.destination_ = static_cast<NodeId>(header.destination);
  return snap;
}

Snapshot::Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this == &other) return *this;
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  map_ = std::exchange(other.map_, nullptr);
  map_bytes_ = std::exchange(other.map_bytes_, 0);
  csr_ = std::move(other.csr_);
  destination_ = other.destination_;
  name_ = std::move(other.name_);
  return *this;
}

Snapshot::~Snapshot() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

Instance Snapshot::thaw_instance() const {
  const std::size_t n = csr_.num_nodes();
  const std::size_t m = csr_.num_edges();

  Graph::TrustedParts parts;
  parts.offsets.assign(csr_.raw_offsets().begin(), csr_.raw_offsets().end());
  parts.adjacency.resize(2 * m);
  const auto nbr = csr_.raw_neighbors();
  const auto edge = csr_.raw_edges();
  for (std::size_t p = 0; p < 2 * m; ++p) {
    parts.adjacency[p] = Incidence{nbr[p], edge[p]};
  }
  // Endpoints by edge id: the canonical (min, max) pair appears exactly
  // once as (u, nbr[p]) with u < nbr[p] while walking the blocks.
  parts.endpoints.resize(m);
  for (NodeId u = 0; u < n; ++u) {
    for (CsrPos p = csr_.adjacency_begin(u); p < csr_.adjacency_end(u); ++p) {
      if (u < nbr[p]) parts.endpoints[edge[p]] = {u, nbr[p]};
    }
  }

  Instance inst;
  inst.graph = Graph::from_trusted_parts(std::move(parts));
  inst.senses.assign(csr_.initial_senses().begin(), csr_.initial_senses().end());
  inst.destination = destination_;
  inst.name = name_;
  return inst;
}

}  // namespace lr

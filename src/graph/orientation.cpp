#include "graph/orientation.hpp"

#include <stdexcept>

namespace lr {

Orientation::Orientation(const Graph& g, std::vector<EdgeSense> senses)
    : graph_(&g), senses_(std::move(senses)) {
  if (senses_.size() != g.num_edges()) {
    throw std::invalid_argument("Orientation: one sense required per edge");
  }
  rebuild_degrees_and_sinks();
}

Orientation Orientation::from_ranking(const Graph& g, std::span<const std::uint32_t> rank) {
  if (rank.size() != g.num_nodes()) {
    throw std::invalid_argument("Orientation::from_ranking: one rank per node required");
  }
  std::vector<EdgeSense> senses(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = g.edge_u(e);
    const NodeId v = g.edge_v(e);
    if (rank[u] == rank[v]) {
      throw std::invalid_argument("Orientation::from_ranking: ranks of adjacent nodes must differ");
    }
    senses[e] = rank[u] < rank[v] ? EdgeSense::kForward : EdgeSense::kBackward;
  }
  return Orientation(g, std::move(senses));
}

void Orientation::rebuild_degrees_and_sinks() {
  const std::size_t n = graph_->num_nodes();
  out_degree_.assign(n, 0);
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    ++out_degree_[tail(e)];
  }
  sinks_.clear();
  sink_pos_.assign(n, kNotSink);
  for (NodeId u = 0; u < n; ++u) {
    if (out_degree_[u] == 0) add_sink(u);
  }
}

void Orientation::add_sink(NodeId u) {
  sink_pos_[u] = static_cast<std::uint32_t>(sinks_.size());
  sinks_.push_back(u);
}

void Orientation::remove_sink(NodeId u) {
  const std::uint32_t pos = sink_pos_[u];
  const NodeId last = sinks_.back();
  sinks_[pos] = last;
  sink_pos_[last] = pos;
  sinks_.pop_back();
  sink_pos_[u] = kNotSink;
}

void Orientation::reverse_edge(EdgeId e) {
  const NodeId old_tail = tail(e);
  const NodeId old_head = head(e);
  senses_[e] = senses_[e] == EdgeSense::kForward ? EdgeSense::kBackward : EdgeSense::kForward;
  ++reversal_count_;

  // old_tail loses an outgoing edge; may become a sink.
  if (--out_degree_[old_tail] == 0) add_sink(old_tail);
  // old_head gains an outgoing edge; may stop being a sink.
  if (out_degree_[old_head]++ == 0) remove_sink(old_head);
}

std::vector<NodeId> Orientation::out_neighbors(NodeId u) const {
  std::vector<NodeId> result;
  result.reserve(out_degree_[u]);
  for (const Incidence& inc : graph_->neighbors(u)) {
    if (dir_from(u, inc.edge) == Dir::kOut) result.push_back(inc.neighbor);
  }
  return result;
}

std::vector<NodeId> Orientation::in_neighbors(NodeId u) const {
  std::vector<NodeId> result;
  result.reserve(in_degree(u));
  for (const Incidence& inc : graph_->neighbors(u)) {
    if (dir_from(u, inc.edge) == Dir::kIn) result.push_back(inc.neighbor);
  }
  return result;
}

}  // namespace lr

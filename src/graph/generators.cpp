#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>
#include <stdexcept>

namespace lr {

namespace {

std::vector<EdgeSense> senses_from_ranking(const Graph& g, const std::vector<std::uint32_t>& rank) {
  std::vector<EdgeSense> senses(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    senses[e] = rank[g.edge_u(e)] < rank[g.edge_v(e)] ? EdgeSense::kForward : EdgeSense::kBackward;
  }
  return senses;
}

}  // namespace

Graph make_chain_graph(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_chain_graph: n must be positive");
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, std::move(edges));
}

Graph make_ring_graph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_ring_graph: n must be >= 3");
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  edges.emplace_back(0, static_cast<NodeId>(n - 1));
  return Graph(n, std::move(edges));
}

Graph make_grid_graph(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("make_grid_graph: empty grid");
  std::vector<std::pair<NodeId, NodeId>> edges;
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph(rows * cols, std::move(edges));
}

Graph make_complete_graph(std::size_t n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph(n, std::move(edges));
}

Graph make_star_graph(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_star_graph: n must be >= 2");
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 1; i < n; ++i) edges.emplace_back(0, i);
  return Graph(n, std::move(edges));
}

Graph make_binary_tree_graph(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_binary_tree_graph: n must be positive");
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 1; i < n; ++i) edges.emplace_back((i - 1) / 2, i);
  return Graph(n, std::move(edges));
}

Graph make_random_tree_graph(std::size_t n, std::mt19937_64& rng) {
  if (n == 0) throw std::invalid_argument("make_random_tree_graph: n must be positive");
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 1; i < n; ++i) {
    std::uniform_int_distribution<NodeId> parent(0, i - 1);
    edges.emplace_back(parent(rng), i);
  }
  return Graph(n, std::move(edges));
}

Graph make_random_connected_graph(std::size_t n, std::size_t extra_edges, std::mt19937_64& rng) {
  Graph tree = make_random_tree_graph(n, rng);
  std::set<std::pair<NodeId, NodeId>> edge_set(tree.edges().begin(), tree.edges().end());
  const std::size_t max_edges = n * (n - 1) / 2;
  const std::size_t target = std::min(max_edges, (n - 1) + extra_edges);
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(n - 1));
  while (edge_set.size() < target) {
    NodeId a = pick(rng);
    NodeId b = pick(rng);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edge_set.insert({a, b});
  }
  return Graph(n, {edge_set.begin(), edge_set.end()});
}

Graph make_layered_graph(std::size_t layers, std::size_t width, double p, std::mt19937_64& rng) {
  if (layers < 2 || width == 0) {
    throw std::invalid_argument("make_layered_graph: need >= 2 layers and positive width");
  }
  // Layer 0 is the single node 0; layer L >= 1 occupies
  // [1 + (L-1)*width, 1 + L*width).
  const auto layer_begin = [width](std::size_t layer) {
    return layer == 0 ? NodeId{0} : static_cast<NodeId>(1 + (layer - 1) * width);
  };
  const auto layer_size = [width](std::size_t layer) { return layer == 0 ? std::size_t{1} : width; };
  const std::size_t n = 1 + (layers - 1) * width;

  std::set<std::pair<NodeId, NodeId>> edge_set;
  std::bernoulli_distribution flip(p);
  for (std::size_t layer = 1; layer < layers; ++layer) {
    const NodeId prev_begin = layer_begin(layer - 1);
    const std::size_t prev_size = layer_size(layer - 1);
    std::uniform_int_distribution<NodeId> pick_prev(prev_begin,
                                                    static_cast<NodeId>(prev_begin + prev_size - 1));
    for (std::size_t i = 0; i < layer_size(layer); ++i) {
      const NodeId u = static_cast<NodeId>(layer_begin(layer) + i);
      // Guarantee connectivity: one mandatory edge to the previous layer.
      NodeId anchor = pick_prev(rng);
      edge_set.insert({std::min(anchor, u), std::max(anchor, u)});
      // Optional extra edges.
      for (std::size_t j = 0; j < prev_size; ++j) {
        const NodeId v = static_cast<NodeId>(prev_begin + j);
        if (v != anchor && flip(rng)) edge_set.insert({std::min(u, v), std::max(u, v)});
      }
    }
  }
  return Graph(n, {edge_set.begin(), edge_set.end()});
}

Graph make_unit_disk_graph(std::size_t n, double radius, std::mt19937_64& rng) {
  if (n == 0) throw std::invalid_argument("make_unit_disk_graph: n must be positive");
  if (radius <= 0.0) throw std::invalid_argument("make_unit_disk_graph: radius must be positive");
  std::uniform_real_distribution<double> coordinate(0.0, 1.0);
  double r = radius;
  while (true) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::vector<std::pair<double, double>> position(n);
      for (auto& [x, y] : position) {
        x = coordinate(rng);
        y = coordinate(rng);
      }
      std::vector<std::pair<NodeId, NodeId>> edges;
      for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = i + 1; j < n; ++j) {
          const double dx = position[i].first - position[j].first;
          const double dy = position[i].second - position[j].second;
          if (dx * dx + dy * dy <= r * r) edges.emplace_back(i, j);
        }
      }
      Graph g(n, std::move(edges));
      if (g.is_connected()) return g;
    }
    r *= 1.25;  // too sparse to connect at this radius: grow and retry
  }
}

Graph make_barbell_graph(std::size_t clique_size, std::size_t bridge_length) {
  if (clique_size < 2) throw std::invalid_argument("make_barbell_graph: cliques need >= 2 nodes");
  const std::size_t n = 2 * clique_size + bridge_length;
  std::vector<std::pair<NodeId, NodeId>> edges;
  // Left clique: nodes [0, clique_size).
  for (NodeId i = 0; i < clique_size; ++i) {
    for (NodeId j = i + 1; j < clique_size; ++j) edges.emplace_back(i, j);
  }
  // Right clique: nodes [clique_size + bridge_length, n).
  const NodeId right_begin = static_cast<NodeId>(clique_size + bridge_length);
  for (NodeId i = right_begin; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  // Bridge path: last left-clique node, bridge nodes, first right-clique node.
  NodeId previous = static_cast<NodeId>(clique_size - 1);
  for (std::size_t k = 0; k < bridge_length; ++k) {
    const NodeId bridge_node = static_cast<NodeId>(clique_size + k);
    edges.emplace_back(previous, bridge_node);
    previous = bridge_node;
  }
  edges.emplace_back(previous, right_begin);
  return Graph(n, std::move(edges));
}

std::vector<std::uint32_t> identity_ranking(std::size_t n) {
  std::vector<std::uint32_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0u);
  return rank;
}

std::vector<std::uint32_t> random_ranking(std::size_t n, std::mt19937_64& rng) {
  auto rank = identity_ranking(n);
  std::shuffle(rank.begin(), rank.end(), rng);
  return rank;
}

std::vector<std::uint32_t> destination_oriented_ranking(const Graph& g, NodeId destination,
                                                        std::mt19937_64& rng) {
  const std::size_t n = g.num_nodes();
  // BFS distances from the destination.
  std::vector<std::uint32_t> dist(n, std::numeric_limits<std::uint32_t>::max());
  std::queue<NodeId> frontier;
  dist[destination] = 0;
  frontier.push(destination);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Incidence& inc : g.neighbors(u)) {
      if (dist[inc.neighbor] == std::numeric_limits<std::uint32_t>::max()) {
        dist[inc.neighbor] = dist[u] + 1;
        frontier.push(inc.neighbor);
      }
    }
  }
  for (const std::uint32_t d : dist) {
    if (d == std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument("destination_oriented_ranking: graph must be connected");
    }
  }
  // Distinct ranks ordered primarily by distance, with random tie-breaking.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::shuffle(order.begin(), order.end(), rng);
  std::stable_sort(order.begin(), order.end(),
                   [&dist](NodeId a, NodeId b) { return dist[a] < dist[b]; });
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) rank[order[pos]] = pos;
  return rank;
}

Instance make_worst_case_chain(std::size_t n) {
  Instance inst;
  inst.graph = make_chain_graph(n);
  inst.senses = senses_from_ranking(inst.graph, identity_ranking(n));
  inst.destination = 0;
  inst.name = "worst_case_chain(n=" + std::to_string(n) + ")";
  return inst;
}

Instance make_random_instance(std::size_t n, std::size_t extra_edges, std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_random_connected_graph(n, extra_edges, rng);
  inst.senses = senses_from_ranking(inst.graph, random_ranking(n, rng));
  inst.destination = 0;
  inst.name = "random(n=" + std::to_string(n) + ", extra=" + std::to_string(extra_edges) + ")";
  return inst;
}

Instance make_layered_bad_instance(std::size_t layers, std::size_t width, double p,
                                   std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_layered_graph(layers, width, p, rng);
  // Identity ranking points every edge away from node 0 (layer indices grow
  // with node id), so all non-destination nodes start bad.
  inst.senses = senses_from_ranking(inst.graph, identity_ranking(inst.graph.num_nodes()));
  inst.destination = 0;
  inst.name = "layered_bad(L=" + std::to_string(layers) + ", w=" + std::to_string(width) + ")";
  return inst;
}

Instance make_grid_instance(std::size_t rows, std::size_t cols, std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_grid_graph(rows, cols);
  inst.senses = senses_from_ranking(inst.graph, random_ranking(inst.graph.num_nodes(), rng));
  inst.destination = 0;
  inst.name = "grid(" + std::to_string(rows) + "x" + std::to_string(cols) + ")";
  return inst;
}

Instance make_unit_disk_instance(std::size_t n, double radius, std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_unit_disk_graph(n, radius, rng);
  inst.senses = senses_from_ranking(inst.graph, random_ranking(n, rng));
  inst.destination = 0;
  inst.name = "unit_disk(n=" + std::to_string(n) + ")";
  return inst;
}

Instance make_sink_source_instance(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_sink_source_instance: n must be >= 3");
  Instance inst;
  inst.graph = make_star_graph(n);
  // Alternate leaf-edge directions: odd leaves point at the hub, even
  // leaves receive from the hub.  Odd leaves are initial sources, even
  // leaves initial sinks; the hub is neither.  Acyclic because the star is
  // a tree.  Edge e connects hub 0 (edge_u) to leaf e+1 (edge_v).
  inst.senses.resize(inst.graph.num_edges());
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    const NodeId leaf = inst.graph.edge_v(e);
    inst.senses[e] = (leaf % 2 == 0) ? EdgeSense::kForward : EdgeSense::kBackward;
  }
  inst.destination = 1;  // a leaf, so the hub and other leaves must reorganize
  inst.name = "sink_source_star(n=" + std::to_string(n) + ")";
  return inst;
}

}  // namespace lr

#include "graph/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace lr {

namespace {

std::vector<EdgeSense> senses_from_ranking(const Graph& g, const std::vector<std::uint32_t>& rank) {
  std::vector<EdgeSense> senses(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    senses[e] = rank[g.edge_u(e)] < rank[g.edge_v(e)] ? EdgeSense::kForward : EdgeSense::kBackward;
  }
  return senses;
}

// ---------------------------------------------------------------------------
// Flat edge-set machinery.  The randomized generators historically
// deduplicated through std::set<std::pair> — one red-black node per edge,
// which dominates generation time at n = 10^6.  They now deduplicate
// through a flat hash set of packed (min << 32 | max) keys and sort once
// at the end: the membership semantics (hence RNG consumption) and the
// final sorted edge order are identical to the std::set versions, so
// every seeded workload is byte-for-byte unchanged.
// ---------------------------------------------------------------------------

/// Packs a canonical edge into one hashable 64-bit key.
constexpr std::uint64_t edge_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

/// Unpacks an edge_key back into its canonical endpoint pair.
constexpr std::pair<NodeId, NodeId> key_edge(std::uint64_t key) {
  return {static_cast<NodeId>(key >> 32), static_cast<NodeId>(key & 0xffffffffu)};
}

/// Sorted canonical edge list of a key set (ascending (min, max) lex
/// order — the same order std::set iteration used to produce).
std::vector<std::pair<NodeId, NodeId>> sorted_edges(const std::unordered_set<std::uint64_t>& keys) {
  std::vector<std::uint64_t> flat(keys.begin(), keys.end());
  std::sort(flat.begin(), flat.end());
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(flat.size());
  for (const std::uint64_t k : flat) edges.push_back(key_edge(k));
  return edges;
}

// ---------------------------------------------------------------------------
// Spatial grid over the unit square: cell width >= radius, so any pair
// within `radius` shares a cell or touches an adjacent one.  Turns the
// unit-disk generators' all-pairs O(n^2) scan into O(n * local density)
// and gives the waypoint churn generator O(local density) link diffs per
// mobility step.
// ---------------------------------------------------------------------------

class UnitSquareGrid {
 public:
  /// A grid for ~`n` points and proximity radius `radius`.  The side is
  /// capped near sqrt(n) so cell bookkeeping stays O(n) even for tiny
  /// radii (cells may then cover several radii, which only costs scan
  /// time, never correctness).
  UnitSquareGrid(std::size_t n, double radius) {
    const auto by_radius = radius >= 1.0 ? std::size_t{1}
                                         : static_cast<std::size_t>(1.0 / radius);
    const auto by_count = static_cast<std::size_t>(std::sqrt(static_cast<double>(n))) + 1;
    side_ = std::max<std::size_t>(1, std::min(by_radius, by_count));
    cells_.resize(side_ * side_);
  }

  void insert(NodeId i, double x, double y) { cells_[cell_of(x, y)].push_back(i); }

  void remove(NodeId i, double x, double y) {
    auto& cell = cells_[cell_of(x, y)];
    const auto it = std::find(cell.begin(), cell.end(), i);
    *it = cell.back();  // order within a cell never matters: callers sort
    cell.pop_back();
  }

  /// Calls `f(j)` for every point in the 3x3 cell block around (x, y) —
  /// a superset of everything within one radius.
  template <typename F>
  void for_each_near(double x, double y, F&& f) const {
    const std::size_t cx = clamp_coord(x);
    const std::size_t cy = clamp_coord(y);
    const std::size_t x0 = cx == 0 ? 0 : cx - 1;
    const std::size_t y0 = cy == 0 ? 0 : cy - 1;
    const std::size_t x1 = std::min(cx + 1, side_ - 1);
    const std::size_t y1 = std::min(cy + 1, side_ - 1);
    for (std::size_t gy = y0; gy <= y1; ++gy) {
      for (std::size_t gx = x0; gx <= x1; ++gx) {
        for (const NodeId j : cells_[gy * side_ + gx]) f(j);
      }
    }
  }

 private:
  std::size_t clamp_coord(double t) const {
    const auto c = static_cast<std::size_t>(t * static_cast<double>(side_));
    return std::min(c, side_ - 1);
  }
  std::size_t cell_of(double x, double y) const { return clamp_coord(y) * side_ + clamp_coord(x); }

  std::size_t side_;
  std::vector<std::vector<NodeId>> cells_;
};

/// One connected unit-disk draw: the graph, the node positions it came
/// from, and the (possibly grown) radius that finally connected.
struct UnitDiskDraw {
  Graph graph;
  std::vector<std::pair<double, double>> positions;
  double radius = 0.0;
};

/// The shared placement loop of make_unit_disk_graph and the waypoint
/// churn generator; see make_unit_disk_graph's contract.
UnitDiskDraw draw_connected_unit_disk(std::size_t n, double radius, std::mt19937_64& rng) {
  if (n == 0) throw std::invalid_argument("make_unit_disk_graph: n must be positive");
  if (radius <= 0.0) throw std::invalid_argument("make_unit_disk_graph: radius must be positive");
  std::uniform_real_distribution<double> coordinate(0.0, 1.0);
  double r = radius;
  while (true) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::vector<std::pair<double, double>> position(n);
      for (auto& [x, y] : position) {
        x = coordinate(rng);
        y = coordinate(rng);
      }
      // Bucket the points, then emit each node's in-radius partners with
      // a larger id in ascending order: the exact (i, j) lexicographic
      // emission order of the historical all-pairs scan, at
      // O(n * local density) instead of O(n^2).
      UnitSquareGrid grid(n, r);
      for (NodeId i = 0; i < n; ++i) grid.insert(i, position[i].first, position[i].second);
      std::vector<std::pair<NodeId, NodeId>> edges;
      std::vector<NodeId> partners;
      for (NodeId i = 0; i < n; ++i) {
        partners.clear();
        grid.for_each_near(position[i].first, position[i].second, [&](NodeId j) {
          if (j <= i) return;
          const double dx = position[i].first - position[j].first;
          const double dy = position[i].second - position[j].second;
          if (dx * dx + dy * dy <= r * r) partners.push_back(j);
        });
        std::sort(partners.begin(), partners.end());
        for (const NodeId j : partners) edges.emplace_back(i, j);
      }
      Graph g(n, std::move(edges));
      if (g.is_connected()) {
        return UnitDiskDraw{std::move(g), std::move(position), r};
      }
    }
    r *= 1.25;  // too sparse to connect at this radius: grow and retry
  }
}

}  // namespace

Graph make_chain_graph(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_chain_graph: n must be positive");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n - 1);
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, std::move(edges));
}

Graph make_ring_graph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_ring_graph: n must be >= 3");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n);
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  edges.emplace_back(0, static_cast<NodeId>(n - 1));
  return Graph(n, std::move(edges));
}

Graph make_grid_graph(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("make_grid_graph: empty grid");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(2 * rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph(rows * cols, std::move(edges));
}

Graph make_complete_graph(std::size_t n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  if (n >= 2) edges.reserve(n * (n - 1) / 2);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph(n, std::move(edges));
}

Graph make_star_graph(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_star_graph: n must be >= 2");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n - 1);
  for (NodeId i = 1; i < n; ++i) edges.emplace_back(0, i);
  return Graph(n, std::move(edges));
}

Graph make_binary_tree_graph(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_binary_tree_graph: n must be positive");
  std::vector<std::pair<NodeId, NodeId>> edges;
  if (n >= 1) edges.reserve(n - 1);
  for (NodeId i = 1; i < n; ++i) edges.emplace_back((i - 1) / 2, i);
  return Graph(n, std::move(edges));
}

Graph make_random_tree_graph(std::size_t n, std::mt19937_64& rng) {
  if (n == 0) throw std::invalid_argument("make_random_tree_graph: n must be positive");
  std::vector<std::pair<NodeId, NodeId>> edges;
  if (n >= 1) edges.reserve(n - 1);
  for (NodeId i = 1; i < n; ++i) {
    std::uniform_int_distribution<NodeId> parent(0, i - 1);
    edges.emplace_back(parent(rng), i);
  }
  return Graph(n, std::move(edges));
}

Graph make_random_connected_graph(std::size_t n, std::size_t extra_edges, std::mt19937_64& rng) {
  Graph tree = make_random_tree_graph(n, rng);
  std::unordered_set<std::uint64_t> edge_set;
  const std::size_t max_edges = n * (n - 1) / 2;
  const std::size_t target = std::min(max_edges, (n - 1) + extra_edges);
  edge_set.reserve(2 * target);
  for (const auto& [a, b] : tree.edges()) edge_set.insert(edge_key(a, b));
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(n - 1));
  while (edge_set.size() < target) {
    const NodeId a = pick(rng);
    const NodeId b = pick(rng);
    if (a == b) continue;
    edge_set.insert(edge_key(a, b));
  }
  return Graph(n, sorted_edges(edge_set));
}

Graph make_layered_graph(std::size_t layers, std::size_t width, double p, std::mt19937_64& rng) {
  if (layers < 2 || width == 0) {
    throw std::invalid_argument("make_layered_graph: need >= 2 layers and positive width");
  }
  // Layer 0 is the single node 0; layer L >= 1 occupies
  // [1 + (L-1)*width, 1 + L*width).
  const auto layer_begin = [width](std::size_t layer) {
    return layer == 0 ? NodeId{0} : static_cast<NodeId>(1 + (layer - 1) * width);
  };
  const auto layer_size = [width](std::size_t layer) { return layer == 0 ? std::size_t{1} : width; };
  const std::size_t n = 1 + (layers - 1) * width;

  std::unordered_set<std::uint64_t> edge_set;
  edge_set.reserve(2 * n);
  std::bernoulli_distribution flip(p);
  for (std::size_t layer = 1; layer < layers; ++layer) {
    const NodeId prev_begin = layer_begin(layer - 1);
    const std::size_t prev_size = layer_size(layer - 1);
    std::uniform_int_distribution<NodeId> pick_prev(prev_begin,
                                                    static_cast<NodeId>(prev_begin + prev_size - 1));
    for (std::size_t i = 0; i < layer_size(layer); ++i) {
      const NodeId u = static_cast<NodeId>(layer_begin(layer) + i);
      // Guarantee connectivity: one mandatory edge to the previous layer.
      NodeId anchor = pick_prev(rng);
      edge_set.insert(edge_key(anchor, u));
      // Optional extra edges.
      for (std::size_t j = 0; j < prev_size; ++j) {
        const NodeId v = static_cast<NodeId>(prev_begin + j);
        if (v != anchor && flip(rng)) edge_set.insert(edge_key(u, v));
      }
    }
  }
  return Graph(n, sorted_edges(edge_set));
}

Graph make_unit_disk_graph(std::size_t n, double radius, std::mt19937_64& rng) {
  return draw_connected_unit_disk(n, radius, rng).graph;
}

Graph make_barbell_graph(std::size_t clique_size, std::size_t bridge_length) {
  if (clique_size < 2) throw std::invalid_argument("make_barbell_graph: cliques need >= 2 nodes");
  const std::size_t n = 2 * clique_size + bridge_length;
  std::vector<std::pair<NodeId, NodeId>> edges;
  // Left clique: nodes [0, clique_size).
  for (NodeId i = 0; i < clique_size; ++i) {
    for (NodeId j = i + 1; j < clique_size; ++j) edges.emplace_back(i, j);
  }
  // Right clique: nodes [clique_size + bridge_length, n).
  const NodeId right_begin = static_cast<NodeId>(clique_size + bridge_length);
  for (NodeId i = right_begin; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  // Bridge path: last left-clique node, bridge nodes, first right-clique node.
  NodeId previous = static_cast<NodeId>(clique_size - 1);
  for (std::size_t k = 0; k < bridge_length; ++k) {
    const NodeId bridge_node = static_cast<NodeId>(clique_size + k);
    edges.emplace_back(previous, bridge_node);
    previous = bridge_node;
  }
  edges.emplace_back(previous, right_begin);
  return Graph(n, std::move(edges));
}

std::vector<std::uint32_t> identity_ranking(std::size_t n) {
  std::vector<std::uint32_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0u);
  return rank;
}

std::vector<std::uint32_t> random_ranking(std::size_t n, std::mt19937_64& rng) {
  auto rank = identity_ranking(n);
  std::shuffle(rank.begin(), rank.end(), rng);
  return rank;
}

std::vector<std::uint32_t> destination_oriented_ranking(const Graph& g, NodeId destination,
                                                        std::mt19937_64& rng) {
  const std::size_t n = g.num_nodes();
  // BFS distances from the destination.
  std::vector<std::uint32_t> dist(n, std::numeric_limits<std::uint32_t>::max());
  std::queue<NodeId> frontier;
  dist[destination] = 0;
  frontier.push(destination);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Incidence& inc : g.neighbors(u)) {
      if (dist[inc.neighbor] == std::numeric_limits<std::uint32_t>::max()) {
        dist[inc.neighbor] = dist[u] + 1;
        frontier.push(inc.neighbor);
      }
    }
  }
  for (const std::uint32_t d : dist) {
    if (d == std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument("destination_oriented_ranking: graph must be connected");
    }
  }
  // Distinct ranks ordered primarily by distance, with random tie-breaking.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::shuffle(order.begin(), order.end(), rng);
  std::stable_sort(order.begin(), order.end(),
                   [&dist](NodeId a, NodeId b) { return dist[a] < dist[b]; });
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) rank[order[pos]] = pos;
  return rank;
}

Instance make_worst_case_chain(std::size_t n) {
  Instance inst;
  inst.graph = make_chain_graph(n);
  inst.senses = senses_from_ranking(inst.graph, identity_ranking(n));
  inst.destination = 0;
  inst.name = "worst_case_chain(n=" + std::to_string(n) + ")";
  return inst;
}

Instance make_random_instance(std::size_t n, std::size_t extra_edges, std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_random_connected_graph(n, extra_edges, rng);
  inst.senses = senses_from_ranking(inst.graph, random_ranking(n, rng));
  inst.destination = 0;
  inst.name = "random(n=" + std::to_string(n) + ", extra=" + std::to_string(extra_edges) + ")";
  return inst;
}

Instance make_layered_bad_instance(std::size_t layers, std::size_t width, double p,
                                   std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_layered_graph(layers, width, p, rng);
  // Identity ranking points every edge away from node 0 (layer indices grow
  // with node id), so all non-destination nodes start bad.
  inst.senses = senses_from_ranking(inst.graph, identity_ranking(inst.graph.num_nodes()));
  inst.destination = 0;
  inst.name = "layered_bad(L=" + std::to_string(layers) + ", w=" + std::to_string(width) + ")";
  return inst;
}

Instance make_grid_instance(std::size_t rows, std::size_t cols, std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_grid_graph(rows, cols);
  inst.senses = senses_from_ranking(inst.graph, random_ranking(inst.graph.num_nodes(), rng));
  inst.destination = 0;
  inst.name = "grid(" + std::to_string(rows) + "x" + std::to_string(cols) + ")";
  return inst;
}

Instance make_unit_disk_instance(std::size_t n, double radius, std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_unit_disk_graph(n, radius, rng);
  inst.senses = senses_from_ranking(inst.graph, random_ranking(n, rng));
  inst.destination = 0;
  inst.name = "unit_disk(n=" + std::to_string(n) + ")";
  return inst;
}

Instance make_sink_source_instance(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_sink_source_instance: n must be >= 3");
  Instance inst;
  inst.graph = make_star_graph(n);
  // Alternate leaf-edge directions: odd leaves point at the hub, even
  // leaves receive from the hub.  Odd leaves are initial sources, even
  // leaves initial sinks; the hub is neither.  Acyclic because the star is
  // a tree.  Edge e connects hub 0 (edge_u) to leaf e+1 (edge_v).
  inst.senses.resize(inst.graph.num_edges());
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    const NodeId leaf = inst.graph.edge_v(e);
    inst.senses[e] = (leaf % 2 == 0) ? EdgeSense::kForward : EdgeSense::kBackward;
  }
  inst.destination = 1;  // a leaf, so the hub and other leaves must reorganize
  inst.name = "sink_source_star(n=" + std::to_string(n) + ")";
  return inst;
}

void stream_torus_edges(std::size_t rows, std::size_t cols,
                        const std::function<void(NodeId, NodeId)>& emit) {
  if (rows < 3 || cols < 3) {
    throw std::invalid_argument("make_torus_graph: need rows, cols >= 3");
  }
  // Every edge is emitted once, by its smaller endpoint; the <= 4 larger
  // partners of each node are sorted, so the whole stream ascends in
  // canonical (min, max) lex order (the CsrBuilder contract).
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto u = static_cast<NodeId>(r * cols + c);
      const std::array<NodeId, 4> around = {
          static_cast<NodeId>(r * cols + (c + 1) % cols),           // right
          static_cast<NodeId>(r * cols + (c + cols - 1) % cols),    // left
          static_cast<NodeId>(((r + 1) % rows) * cols + c),         // down
          static_cast<NodeId>(((r + rows - 1) % rows) * cols + c),  // up
      };
      std::array<NodeId, 4> larger;
      std::size_t k = 0;
      for (const NodeId v : around) {
        if (v > u) larger[k++] = v;
      }
      // Insertion sort over <= 4 elements (std::sort here trips GCC 12
      // array-bounds false positives at -O2).
      for (std::size_t i = 1; i < k; ++i) {
        for (std::size_t j = i; j > 0 && larger[j] < larger[j - 1]; --j) {
          std::swap(larger[j], larger[j - 1]);
        }
      }
      for (std::size_t i = 0; i < k; ++i) emit(u, larger[i]);
    }
  }
}

Graph make_torus_graph(std::size_t rows, std::size_t cols) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(2 * rows * cols);
  stream_torus_edges(rows, cols, [&edges](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  return Graph(rows * cols, std::move(edges));
}

Graph make_wide_random_graph(std::size_t n, double avg_degree, std::mt19937_64& rng) {
  if (n == 0) throw std::invalid_argument("make_wide_random_graph: n must be positive");
  if (avg_degree < 0.0) {
    throw std::invalid_argument("make_wide_random_graph: avg_degree must be non-negative");
  }
  const std::size_t max_edges = n * (n - 1) / 2;
  const auto wanted = static_cast<std::size_t>(avg_degree * static_cast<double>(n) / 2.0);
  const std::size_t target = std::min(max_edges, std::max(n >= 1 ? n - 1 : 0, wanted));

  std::unordered_set<std::uint64_t> edge_set;
  edge_set.reserve(2 * target);
  // Random-attachment spanning tree: low diameter (hence "wide"), O(n).
  for (NodeId i = 1; i < n; ++i) {
    std::uniform_int_distribution<NodeId> parent(0, i - 1);
    edge_set.insert(edge_key(parent(rng), i));
  }
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(n - 1));
  while (edge_set.size() < target) {
    const NodeId a = pick(rng);
    const NodeId b = pick(rng);
    if (a == b) continue;
    edge_set.insert(edge_key(a, b));
  }
  return Graph(n, sorted_edges(edge_set));
}

Instance make_torus_instance(std::size_t rows, std::size_t cols, std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_torus_graph(rows, cols);
  inst.senses = senses_from_ranking(inst.graph, random_ranking(inst.graph.num_nodes(), rng));
  inst.destination = 0;
  inst.name = "torus(" + std::to_string(rows) + "x" + std::to_string(cols) + ")";
  return inst;
}

Instance make_wide_random_instance(std::size_t n, double avg_degree, std::mt19937_64& rng) {
  Instance inst;
  inst.graph = make_wide_random_graph(n, avg_degree, rng);
  inst.senses = senses_from_ranking(inst.graph, random_ranking(n, rng));
  inst.destination = 0;
  inst.name = "wide_random(n=" + std::to_string(n) + ")";
  return inst;
}

ChurnInstance make_waypoint_churn_instance(std::size_t n, double radius, std::size_t min_events,
                                           std::mt19937_64& rng) {
  if (n < 2) throw std::invalid_argument("make_waypoint_churn_instance: n must be >= 2");
  UnitDiskDraw draw = draw_connected_unit_disk(n, radius, rng);
  const double r = draw.radius;
  auto& pos = draw.positions;

  ChurnInstance out;
  out.instance.graph = std::move(draw.graph);
  // Canonical all-forward orientation: the sense insert_link assigns to
  // patched-in links, so a full-schedule replay restores the snapshot
  // byte-for-byte (see the header contract).
  out.instance.senses.assign(out.instance.graph.num_edges(), EdgeSense::kForward);
  out.instance.destination = 0;
  out.instance.name = "waypoint(n=" + std::to_string(n) + ")";

  // The proximity link set, live under mobility; starts as the graph.
  std::unordered_set<std::uint64_t> links;
  links.reserve(2 * out.instance.graph.num_edges());
  for (const auto& [a, b] : out.instance.graph.edges()) links.insert(edge_key(a, b));
  const std::unordered_set<std::uint64_t> original = links;

  UnitSquareGrid grid(n, r);
  for (NodeId i = 0; i < n; ++i) grid.insert(i, pos[i].first, pos[i].second);

  std::uniform_int_distribution<NodeId> pick_node(0, static_cast<NodeId>(n - 1));
  std::uniform_real_distribution<double> coordinate(0.0, 1.0);
  std::vector<NodeId> before, after, lost, gained;
  const auto in_radius = [&](NodeId w, std::vector<NodeId>& partners) {
    partners.clear();
    grid.for_each_near(pos[w].first, pos[w].second, [&](NodeId j) {
      if (j == w) return;
      const double dx = pos[w].first - pos[j].first;
      const double dy = pos[w].second - pos[j].second;
      if (dx * dx + dy * dy <= r * r) partners.push_back(j);
    });
    std::sort(partners.begin(), partners.end());
  };

  // Mobility steps: teleport one node to a fresh waypoint and emit the
  // proximity-link diff.  The step budget guards against degenerate
  // placements where moves stop producing events (near-impossible on a
  // connected draw, but an infinite loop is worse than a short schedule).
  std::size_t steps_left = 10 * min_events + 1000;
  while (out.churn.size() < min_events && steps_left-- > 0) {
    const NodeId w = pick_node(rng);
    in_radius(w, before);
    grid.remove(w, pos[w].first, pos[w].second);
    pos[w] = {coordinate(rng), coordinate(rng)};
    grid.insert(w, pos[w].first, pos[w].second);
    in_radius(w, after);
    lost.clear();
    gained.clear();
    std::set_difference(before.begin(), before.end(), after.begin(), after.end(),
                        std::back_inserter(lost));
    std::set_difference(after.begin(), after.end(), before.begin(), before.end(),
                        std::back_inserter(gained));
    for (const NodeId v : lost) {
      out.churn.push_back(LinkEvent{std::min(w, v), std::max(w, v), false});
      links.erase(edge_key(w, v));
    }
    for (const NodeId v : gained) {
      out.churn.push_back(LinkEvent{std::min(w, v), std::max(w, v), true});
      links.insert(edge_key(w, v));
    }
  }

  // Healing suffix: return the link set to the initial topology exactly
  // (downs for links churn created, ups for links it destroyed; both in
  // canonical order for determinism).
  std::vector<std::uint64_t> extra, missing;
  for (const std::uint64_t k : links) {
    if (!original.contains(k)) extra.push_back(k);
  }
  for (const std::uint64_t k : original) {
    if (!links.contains(k)) missing.push_back(k);
  }
  std::sort(extra.begin(), extra.end());
  std::sort(missing.begin(), missing.end());
  for (const std::uint64_t k : extra) {
    const auto [a, b] = key_edge(k);
    out.churn.push_back(LinkEvent{a, b, false});
  }
  for (const std::uint64_t k : missing) {
    const auto [a, b] = key_edge(k);
    out.churn.push_back(LinkEvent{a, b, true});
  }
  return out;
}

}  // namespace lr

#include "graph/dot.hpp"

#include <ostream>
#include <sstream>

namespace lr {

void write_dot(std::ostream& os, const Orientation& orientation, const DotOptions& options) {
  const Graph& g = orientation.graph();
  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=LR;\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    os << "  n" << u << " [label=\"" << u << "\"";
    if (u == options.destination) {
      os << ", shape=doublecircle";
    } else {
      os << ", shape=circle";
    }
    if (options.highlight_sinks && u != options.destination && orientation.is_sink(u) &&
        g.degree(u) > 0) {
      os << ", style=filled, fillcolor=lightgray";
    }
    if (options.embedding != nullptr) {
      os << ", pos=\"" << options.embedding->position(u) << ",0!\"";
    }
    os << "];\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "  n" << orientation.tail(e) << " -> n" << orientation.head(e) << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const Orientation& orientation, const DotOptions& options) {
  std::ostringstream oss;
  write_dot(oss, orientation, options);
  return oss.str();
}

}  // namespace lr

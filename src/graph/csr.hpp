#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/orientation.hpp"

/// \file csr.hpp
/// The immutable compressed-sparse-row (CSR) execution core.
///
/// `Graph` is the *build/mutation front-end*: it validates edges, supports
/// binary-searched lookups, and is the representation every constructor in
/// the library accepts.  `CsrGraph` is the *execution back-end*: a frozen,
/// fully flat snapshot of one graph plus one initial orientation, designed
/// so that the reversal hot path (core/reversal_engine.hpp) touches nothing
/// but contiguous integer arrays — no `Incidence` pairs, no per-step
/// allocation, no binary searches inside kernels.
///
/// Three flat views are precomputed at conversion time:
///
///  1. **Adjacency** — `neighbors(u)` / `incident_edges(u)` spans in
///     ascending neighbor order (identical order to `Graph::neighbors`),
///     addressed by a global *position* `p` in `[0, 2m)`.
///  2. **Mirrors** — `mirror(p)` maps position `p` (edge `e` seen from `u`)
///     to the position of the same edge in the other endpoint's adjacency
///     block.  This is what lets Partial Reversal update `list[v]` in O(1)
///     per reversed edge instead of re-binary-searching `v`'s adjacency.
///  3. **Initial in/out partition** — per node, the positions (and neighbor
///     ids) of its initial in-edges and initial out-edges with respect to
///     the *initial* orientation, as O(1) spans.  These are the paper's
///     constant sets `in-nbrs_u` / `out-nbrs_u` that NewPR reverses by
///     parity, so the NewPR kernel touches exactly the set it flips.
///
/// Storage modes: a CsrGraph normally *owns* its eight arrays, but it can
/// also be a non-owning *borrowed* view over externally owned memory —
/// the zero-fixup reload mode of the mmap snapshot layer
/// (graph/snapshot.hpp): every array is stored in the snapshot file
/// exactly as it lives in memory, so loading is `mmap` + eight span
/// bindings, no parsing and no per-element work.  All read accessors go
/// through spans either way, so the engine cannot tell the modes apart.
/// Mutating a borrowed snapshot (insert_link / remove_link) first
/// *materializes* it — copies the views into owning vectors — because the
/// borrowed memory may be a read-only shared mapping.
///
/// A `CsrGraph` never changes during an execution; mutable execution state
/// (current edge senses, out-degrees, lists, parities) lives in the engine.
/// Between executions, however, a snapshot can be *patched in place* for
/// single-link topology events (`insert_link` / `remove_link`): one linear
/// pass over the flat arrays instead of a `Graph` reconstruction plus a
/// full rebuild.  The dynamic routing core (routing/dynamic_heights.hpp)
/// uses this to keep churn-heavy TORA sweeps rebuild-free.

namespace lr {

class CsrBuilder;

/// Flat CSR snapshot of a `Graph` plus an initial orientation; immutable
/// during execution, patchable between executions (see insert_link).
class CsrGraph {
 public:
  /// An empty CSR graph (0 nodes); useful as a placeholder before assignment.
  CsrGraph() = default;

  /// Converts `g` using the all-forward initial orientation (every edge
  /// pointing from its smaller to its larger endpoint, the canonical
  /// sense).  `g` may be destroyed afterwards: the CSR form is self-owned.
  explicit CsrGraph(const Graph& g);

  /// Converts `g` with the given initial orientation (one sense per edge,
  /// as stored by `Orientation::senses()` and `Instance::senses`).  Throws
  /// std::invalid_argument if `initial.size() != g.num_edges()`.
  CsrGraph(const Graph& g, std::span<const EdgeSense> initial);

  /// Copying preserves the storage mode: an owning snapshot deep-copies
  /// its arrays (views rebound to the copy), a borrowed one copies the
  /// views (both copies alias the same external memory).
  CsrGraph(const CsrGraph& other);
  /// \copydoc CsrGraph(const CsrGraph&)
  CsrGraph& operator=(const CsrGraph& other);
  /// Moving transfers the arrays (or the borrowed views) wholesale; the
  /// moved-from graph is left empty.
  CsrGraph(CsrGraph&& other) noexcept;
  /// \copydoc CsrGraph(CsrGraph&&)
  CsrGraph& operator=(CsrGraph&& other) noexcept;
  ~CsrGraph() = default;

  /// The eight flat arrays of one snapshot as externally owned spans —
  /// the input of `borrow()`.  Lifetime: the spans must outlive the
  /// borrowed CsrGraph (the snapshot layer keeps the mmap alive for
  /// exactly that reason).
  struct BorrowedArrays {
    std::size_t num_nodes = 0;           ///< n
    std::span<const CsrPos> offsets;     ///< size n+1
    std::span<const NodeId> nbr;         ///< size 2m
    std::span<const EdgeId> edge;        ///< size 2m
    std::span<const CsrPos> mirror;      ///< size 2m
    std::span<const NodeId> part_nbr;    ///< size 2m
    std::span<const CsrPos> part_pos;    ///< size 2m
    std::span<const CsrPos> split;       ///< size n
    std::span<const EdgeSense> senses;   ///< size m
  };

  /// A non-owning snapshot over `arrays` (see the file comment's storage
  /// modes).  Throws std::invalid_argument when the span sizes are
  /// mutually inconsistent.  The arrays' *contents* are trusted — the
  /// snapshot layer validates a checksum before borrowing.
  static CsrGraph borrow(const BorrowedArrays& arrays);

  /// True iff this snapshot is a non-owning view (see borrow()).
  bool is_borrowed() const noexcept { return borrowed_; }

  /// Converts a borrowed snapshot into an owning one by copying the
  /// borrowed memory into fresh vectors; no-op on an owning snapshot.
  /// After this the external memory may be unmapped.
  void materialize();

  /// Number of nodes.
  std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Number of undirected edges.
  std::size_t num_edges() const noexcept { return v_senses_.size(); }

  /// First flat position of node `u`'s adjacency block.
  CsrPos adjacency_begin(NodeId u) const { return v_offsets_[u]; }

  /// One past the last flat position of node `u`'s adjacency block.
  CsrPos adjacency_end(NodeId u) const { return v_offsets_[u + 1]; }

  /// Neighbor at flat position `p`.
  NodeId neighbor_at(CsrPos p) const { return v_nbr_[p]; }

  /// Edge id at flat position `p`.
  EdgeId edge_at(CsrPos p) const { return v_edge_[p]; }

  /// Position of the same edge inside the *other* endpoint's block.
  CsrPos mirror(CsrPos p) const { return v_mirror_[p]; }

  /// Flat position of neighbor `v` inside `u`'s adjacency block, or
  /// nullopt when `v` is not adjacent to `u`.  O(log deg(u)) over the
  /// ascending neighbor slice — the one lookup the sim layer's
  /// view-by-position state and the network's adjacency checks share.
  std::optional<CsrPos> position_of(NodeId u, NodeId v) const {
    const auto nbrs = neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    if (it == nbrs.end() || *it != v) return std::nullopt;
    return v_offsets_[u] + static_cast<CsrPos>(it - nbrs.begin());
  }

  /// Degree of node `u`.
  std::size_t degree(NodeId u) const { return v_offsets_[u + 1] - v_offsets_[u]; }

  /// All neighbors of `u`, ascending (same order as `Graph::neighbors`).
  std::span<const NodeId> neighbors(NodeId u) const {
    return v_nbr_.subspan(v_offsets_[u], degree(u));
  }

  /// Edge ids incident to `u`, aligned with `neighbors(u)`.
  std::span<const EdgeId> incident_edges(NodeId u) const {
    return v_edge_.subspan(v_offsets_[u], degree(u));
  }

  /// The initial orientation this CSR snapshot was built with.
  std::span<const EdgeSense> initial_senses() const noexcept { return v_senses_; }

  /// The paper's constant set `in-nbrs_u` (ascending) as an O(1) slice.
  std::span<const NodeId> initial_in_neighbors(NodeId u) const {
    return v_part_nbr_.subspan(v_offsets_[u], v_split_[u] - v_offsets_[u]);
  }

  /// The paper's constant set `out-nbrs_u` (ascending) as an O(1) slice.
  std::span<const NodeId> initial_out_neighbors(NodeId u) const {
    return v_part_nbr_.subspan(v_split_[u], v_offsets_[u + 1] - v_split_[u]);
  }

  /// Flat adjacency positions of `u`'s initial in-edges (aligned with
  /// `initial_in_neighbors`); the NewPR even-parity reversal set.
  std::span<const CsrPos> initial_in_positions(NodeId u) const {
    return v_part_pos_.subspan(v_offsets_[u], v_split_[u] - v_offsets_[u]);
  }

  /// Flat adjacency positions of `u`'s initial out-edges (aligned with
  /// `initial_out_neighbors`); the NewPR odd-parity reversal set.
  std::span<const CsrPos> initial_out_positions(NodeId u) const {
    return v_part_pos_.subspan(v_split_[u], v_offsets_[u + 1] - v_split_[u]);
  }

  /// |in-nbrs_u| with respect to the initial orientation.
  std::size_t initial_in_degree(NodeId u) const { return v_split_[u] - v_offsets_[u]; }

  /// |out-nbrs_u| with respect to the initial orientation.
  std::size_t initial_out_degree(NodeId u) const { return v_offsets_[u + 1] - v_split_[u]; }

  /// True iff the edge at position `p` points *out of* the block owner `u`
  /// under the given current senses.  Canonical endpoint order makes this a
  /// pure comparison: forward means smaller-id -> larger-id.
  bool points_out_of(CsrPos p, NodeId u, std::span<const EdgeSense> senses) const {
    return (senses[v_edge_[p]] == EdgeSense::kForward) == (u < v_nbr_[p]);
  }

  // -------------------------------------------------------------------------
  // Whole-array views (the snapshot writer's and the test suite's flat
  // window into one snapshot; kernels use the per-node accessors above)
  // -------------------------------------------------------------------------

  /// Block-boundary offsets, size n+1.
  std::span<const CsrPos> raw_offsets() const noexcept { return v_offsets_; }
  /// Neighbor ids by position, size 2m.
  std::span<const NodeId> raw_neighbors() const noexcept { return v_nbr_; }
  /// Edge ids by position, size 2m.
  std::span<const EdgeId> raw_edges() const noexcept { return v_edge_; }
  /// Mirror positions, size 2m.
  std::span<const CsrPos> raw_mirrors() const noexcept { return v_mirror_; }
  /// Partition neighbor ids, size 2m.
  std::span<const NodeId> raw_partition_neighbors() const noexcept { return v_part_nbr_; }
  /// Partition adjacency positions, size 2m.
  std::span<const CsrPos> raw_partition_positions() const noexcept { return v_part_pos_; }
  /// Out-block start per node, size n.
  std::span<const CsrPos> raw_splits() const noexcept { return v_split_; }

  /// FNV-1a fingerprint over every array of the snapshot (offsets,
  /// adjacency, mirrors, partition, splits, senses, node count).  Two
  /// snapshots with equal fingerprints are byte-identical for every
  /// accessor — the self-verification hook of the E10 bench and the
  /// streaming-vs-batch identity tests.
  std::uint64_t fingerprint() const;

  // -------------------------------------------------------------------------
  // Single-link in-place patching (the incremental snapshot-repair path)
  // -------------------------------------------------------------------------
  //
  // Both calls keep every class invariant — adjacency order, mirror links,
  // the initial in/out partition, and edge-id numbering — via one linear
  // pass over the flat arrays, so a patched snapshot is *byte-identical*
  // to one rebuilt from scratch over the modified edge list
  // (tests/csr_test.cpp locks this in under randomized churn).
  //
  // Precondition (documented, not checked): edge ids must ascend in
  // canonical (min, max) endpoint order, i.e. the snapshot was built from
  // a Graph over a canonically sorted edge list — which is exactly how
  // `DynamicHeightsDag` builds and rebuilds its snapshots.  Patching
  // preserves the property, so any number of patches may be chained.
  //
  // A borrowed snapshot is materialized first (one array copy), then
  // patched: the mmap'd bytes stay pristine for other processes.

  /// Patches the link {u, v} into the snapshot with initial sense `sense`
  /// for the new edge (forward = min -> max, the canonical default).
  /// Throws std::invalid_argument on bad endpoints or an existing link.
  /// O(n + m) array shifting — no allocation beyond vector growth, no
  /// Graph reconstruction, no re-sorting.
  void insert_link(NodeId u, NodeId v, EdgeSense sense = EdgeSense::kForward);

  /// Patches the link {u, v} out of the snapshot.  Throws
  /// std::invalid_argument on bad endpoints or an absent link.  Same cost
  /// model as insert_link.
  void remove_link(NodeId u, NodeId v);

 private:
  friend class CsrBuilder;

  void build(const Graph& g, std::span<const EdgeSense> initial);
  /// Derives part_nbr_ / part_pos_ / split_ from the completed adjacency
  /// arrays and initial_senses_ (views must already be bound).
  void fill_partition();
  /// Points the read views at the owning vectors.
  void rebind() noexcept;

  std::size_t num_nodes_ = 0;
  bool borrowed_ = false;

  // Owning storage; empty while borrowed (until materialize()).
  std::vector<CsrPos> offsets_;            ///< size n+1; block boundaries
  std::vector<NodeId> nbr_;                ///< size 2m; neighbors, ascending per block
  std::vector<EdgeId> edge_;               ///< size 2m; edge ids, aligned with nbr_
  std::vector<CsrPos> mirror_;             ///< size 2m; same edge, other endpoint
  std::vector<NodeId> part_nbr_;           ///< size 2m; [in-block | out-block] per node
  std::vector<CsrPos> part_pos_;           ///< size 2m; adjacency positions, aligned
  std::vector<CsrPos> split_;              ///< size n; where the out-block starts
  std::vector<EdgeSense> initial_senses_;  ///< size m; the frozen initial orientation

  // Read views: every accessor indexes these, so owning and borrowed
  // snapshots share one code path.  Bound to the vectors above (owning)
  // or to external memory (borrowed).
  std::span<const CsrPos> v_offsets_;
  std::span<const NodeId> v_nbr_;
  std::span<const EdgeId> v_edge_;
  std::span<const CsrPos> v_mirror_;
  std::span<const NodeId> v_part_nbr_;
  std::span<const CsrPos> v_part_pos_;
  std::span<const CsrPos> v_split_;
  std::span<const EdgeSense> v_senses_;
};

/// Streaming two-pass CSR construction — the million-node build path.
///
/// `CsrGraph(const Graph&)` is the *batch* converter: it requires the
/// fully materialized `Graph` front-end, which itself holds an endpoint
/// list, a sorted scratch copy for duplicate detection, and an `Incidence`
/// CSR payload — three m-sized intermediates that exist only to be copied
/// into the snapshot and thrown away.  `CsrBuilder` eliminates all of
/// them: the caller replays its edge *stream* twice — once to count
/// degrees, once to place both endpoints of each edge (mirrors are linked
/// at placement, so the batch path's per-edge `first_pos` scratch array
/// disappears too) — and the only allocations are the snapshot's own
/// eight output arrays.  Work is O(V + E); peak memory is the finished
/// snapshot, nothing else.
///
/// Stream contract (checked, throws std::invalid_argument on violation):
/// both passes must replay the *identical* sequence of edges in strictly
/// ascending canonical (min, max) lexicographic order — which generators
/// emit naturally, and which makes validation free: strict ascent implies
/// no duplicates, and self-loops/range are checked per edge.  Edge ids
/// are stream ranks, exactly the canonical-rank numbering the
/// `insert_link` / `remove_link` patch path requires, so a streamed
/// snapshot is patchable from birth.  Per-block neighbor ascent falls out
/// of the stream order: node `w`'s block receives its smaller neighbors
/// (from edges `(x, w)`, `x` ascending) before its larger ones (from
/// edges `(w, y)`, `y` ascending).
///
/// The 32-bit position space (graph/types.hpp offset-width policy) is
/// guarded at `begin_placement()`: 2·E >= 2^32 throws std::overflow_error
/// before any position array is allocated.  `position_limit` exists so
/// tests can exercise the guard without allocating 2^31 edges.
///
/// Usage:
///
///     CsrBuilder b(n);
///     for (auto [u, v] : stream) b.count_edge(u, v);      // pass 1
///     b.begin_placement();
///     for (auto [u, v] : stream) b.place_edge(u, v, s);   // pass 2
///     CsrGraph csr = b.finish();
///
/// A streamed snapshot is byte-identical (CsrGraph::fingerprint) to the
/// batch conversion of a Graph over the same canonically sorted edge
/// list; tests/csr_builder_test.cpp locks this in under randomized
/// streams.
class CsrBuilder {
 public:
  /// Starts a build over `num_nodes` nodes.  `position_limit` caps the
  /// adjacency position space (default: the 32-bit CsrPos limit); it is a
  /// test hook, not a tuning knob.
  explicit CsrBuilder(std::size_t num_nodes, std::uint64_t position_limit = kCsrPosLimit);

  /// Pass 1: counts one edge.  Validates range, self-loops, and strict
  /// canonical ascent against the previous counted edge.
  void count_edge(NodeId u, NodeId v);

  /// Ends pass 1: checks the position-space bound (std::overflow_error
  /// when 2·E >= the limit), prefix-sums the degree counts, and allocates
  /// the position arrays.
  void begin_placement();

  /// Pass 2: places both endpoints of the next edge and links their
  /// mirror positions.  The sequence must replay pass 1 exactly (same
  /// edges, same order); `sense` is the edge's initial orientation.
  void place_edge(NodeId u, NodeId v, EdgeSense sense = EdgeSense::kForward);

  /// Number of edges counted so far (pass 1) / placed so far (pass 2).
  std::size_t edges() const noexcept { return placing_ ? placed_ : counted_; }

  /// Finishes the build: restores the offset array, derives the initial
  /// in/out partition, and returns the snapshot.  Throws
  /// std::invalid_argument when pass 2 placed fewer edges than pass 1
  /// counted.  The builder is spent afterwards.
  CsrGraph finish();

 private:
  /// Validates the next streamed edge of either pass (range, self-loop,
  /// strict canonical ascent), updates the ascent state, and returns the
  /// canonical (min, max) pair.  `index` is the edge's rank in its pass.
  std::pair<NodeId, NodeId> next_edge(NodeId u, NodeId v, std::size_t index);

  CsrGraph out_;
  std::uint64_t position_limit_;
  std::size_t counted_ = 0;
  std::size_t placed_ = 0;
  bool placing_ = false;
  NodeId prev_a_ = 0;  ///< last canonical pair seen (ascent check)
  NodeId prev_b_ = 0;
};

}  // namespace lr

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/orientation.hpp"

/// \file csr.hpp
/// The immutable compressed-sparse-row (CSR) execution core.
///
/// `Graph` is the *build/mutation front-end*: it validates edges, supports
/// binary-searched lookups, and is the representation every constructor in
/// the library accepts.  `CsrGraph` is the *execution back-end*: a frozen,
/// fully flat snapshot of one graph plus one initial orientation, designed
/// so that the reversal hot path (core/reversal_engine.hpp) touches nothing
/// but contiguous integer arrays — no `Incidence` pairs, no per-step
/// allocation, no binary searches inside kernels.
///
/// Three flat views are precomputed at conversion time:
///
///  1. **Adjacency** — `neighbors(u)` / `incident_edges(u)` spans in
///     ascending neighbor order (identical order to `Graph::neighbors`),
///     addressed by a global *position* `p` in `[0, 2m)`.
///  2. **Mirrors** — `mirror(p)` maps position `p` (edge `e` seen from `u`)
///     to the position of the same edge in the other endpoint's adjacency
///     block.  This is what lets Partial Reversal update `list[v]` in O(1)
///     per reversed edge instead of re-binary-searching `v`'s adjacency.
///  3. **Initial in/out partition** — per node, the positions (and neighbor
///     ids) of its initial in-edges and initial out-edges with respect to
///     the *initial* orientation, as O(1) spans.  These are the paper's
///     constant sets `in-nbrs_u` / `out-nbrs_u` that NewPR reverses by
///     parity, so the NewPR kernel touches exactly the set it flips.
///
/// A `CsrGraph` never changes during an execution; mutable execution state
/// (current edge senses, out-degrees, lists, parities) lives in the engine.
/// Between executions, however, a snapshot can be *patched in place* for
/// single-link topology events (`insert_link` / `remove_link`): one linear
/// pass over the flat arrays instead of a `Graph` reconstruction plus a
/// full rebuild.  The dynamic routing core (routing/dynamic_heights.hpp)
/// uses this to keep churn-heavy TORA sweeps rebuild-free.

namespace lr {

/// Flat position index into the CSR adjacency arrays; positions run over
/// `[0, 2m)` with node `u`'s block at `[adjacency_begin(u), adjacency_end(u))`.
using CsrPos = std::uint32_t;

/// Flat CSR snapshot of a `Graph` plus an initial orientation; immutable
/// during execution, patchable between executions (see insert_link).
class CsrGraph {
 public:
  /// An empty CSR graph (0 nodes); useful as a placeholder before assignment.
  CsrGraph() = default;

  /// Converts `g` using the all-forward initial orientation (every edge
  /// pointing from its smaller to its larger endpoint, the canonical
  /// sense).  `g` may be destroyed afterwards: the CSR form is self-owned.
  explicit CsrGraph(const Graph& g);

  /// Converts `g` with the given initial orientation (one sense per edge,
  /// as stored by `Orientation::senses()` and `Instance::senses`).  Throws
  /// std::invalid_argument if `initial.size() != g.num_edges()`.
  CsrGraph(const Graph& g, std::span<const EdgeSense> initial);

  /// Number of nodes.
  std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Number of undirected edges.
  std::size_t num_edges() const noexcept { return initial_senses_.size(); }

  /// First flat position of node `u`'s adjacency block.
  CsrPos adjacency_begin(NodeId u) const { return offsets_[u]; }

  /// One past the last flat position of node `u`'s adjacency block.
  CsrPos adjacency_end(NodeId u) const { return offsets_[u + 1]; }

  /// Neighbor at flat position `p`.
  NodeId neighbor_at(CsrPos p) const { return nbr_[p]; }

  /// Edge id at flat position `p`.
  EdgeId edge_at(CsrPos p) const { return edge_[p]; }

  /// Position of the same edge inside the *other* endpoint's block.
  CsrPos mirror(CsrPos p) const { return mirror_[p]; }

  /// Flat position of neighbor `v` inside `u`'s adjacency block, or
  /// nullopt when `v` is not adjacent to `u`.  O(log deg(u)) over the
  /// ascending neighbor slice — the one lookup the sim layer's
  /// view-by-position state and the network's adjacency checks share.
  std::optional<CsrPos> position_of(NodeId u, NodeId v) const {
    const auto nbrs = neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    if (it == nbrs.end() || *it != v) return std::nullopt;
    return offsets_[u] + static_cast<CsrPos>(it - nbrs.begin());
  }

  /// Degree of node `u`.
  std::size_t degree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// All neighbors of `u`, ascending (same order as `Graph::neighbors`).
  std::span<const NodeId> neighbors(NodeId u) const {
    return std::span<const NodeId>(nbr_).subspan(offsets_[u], degree(u));
  }

  /// Edge ids incident to `u`, aligned with `neighbors(u)`.
  std::span<const EdgeId> incident_edges(NodeId u) const {
    return std::span<const EdgeId>(edge_).subspan(offsets_[u], degree(u));
  }

  /// The initial orientation this CSR snapshot was built with.
  std::span<const EdgeSense> initial_senses() const noexcept { return initial_senses_; }

  /// The paper's constant set `in-nbrs_u` (ascending) as an O(1) slice.
  std::span<const NodeId> initial_in_neighbors(NodeId u) const {
    return std::span<const NodeId>(part_nbr_).subspan(offsets_[u], split_[u] - offsets_[u]);
  }

  /// The paper's constant set `out-nbrs_u` (ascending) as an O(1) slice.
  std::span<const NodeId> initial_out_neighbors(NodeId u) const {
    return std::span<const NodeId>(part_nbr_).subspan(split_[u], offsets_[u + 1] - split_[u]);
  }

  /// Flat adjacency positions of `u`'s initial in-edges (aligned with
  /// `initial_in_neighbors`); the NewPR even-parity reversal set.
  std::span<const CsrPos> initial_in_positions(NodeId u) const {
    return std::span<const CsrPos>(part_pos_).subspan(offsets_[u], split_[u] - offsets_[u]);
  }

  /// Flat adjacency positions of `u`'s initial out-edges (aligned with
  /// `initial_out_neighbors`); the NewPR odd-parity reversal set.
  std::span<const CsrPos> initial_out_positions(NodeId u) const {
    return std::span<const CsrPos>(part_pos_).subspan(split_[u], offsets_[u + 1] - split_[u]);
  }

  /// |in-nbrs_u| with respect to the initial orientation.
  std::size_t initial_in_degree(NodeId u) const { return split_[u] - offsets_[u]; }

  /// |out-nbrs_u| with respect to the initial orientation.
  std::size_t initial_out_degree(NodeId u) const { return offsets_[u + 1] - split_[u]; }

  /// True iff the edge at position `p` points *out of* the block owner `u`
  /// under the given current senses.  Canonical endpoint order makes this a
  /// pure comparison: forward means smaller-id -> larger-id.
  bool points_out_of(CsrPos p, NodeId u, std::span<const EdgeSense> senses) const {
    return (senses[edge_[p]] == EdgeSense::kForward) == (u < nbr_[p]);
  }

  // -------------------------------------------------------------------------
  // Single-link in-place patching (the incremental snapshot-repair path)
  // -------------------------------------------------------------------------
  //
  // Both calls keep every class invariant — adjacency order, mirror links,
  // the initial in/out partition, and edge-id numbering — via one linear
  // pass over the flat arrays, so a patched snapshot is *byte-identical*
  // to one rebuilt from scratch over the modified edge list
  // (tests/csr_test.cpp locks this in under randomized churn).
  //
  // Precondition (documented, not checked): edge ids must ascend in
  // canonical (min, max) endpoint order, i.e. the snapshot was built from
  // a Graph over a canonically sorted edge list — which is exactly how
  // `DynamicHeightsDag` builds and rebuilds its snapshots.  Patching
  // preserves the property, so any number of patches may be chained.

  /// Patches the link {u, v} into the snapshot with initial sense `sense`
  /// for the new edge (forward = min -> max, the canonical default).
  /// Throws std::invalid_argument on bad endpoints or an existing link.
  /// O(n + m) array shifting — no allocation beyond vector growth, no
  /// Graph reconstruction, no re-sorting.
  void insert_link(NodeId u, NodeId v, EdgeSense sense = EdgeSense::kForward);

  /// Patches the link {u, v} out of the snapshot.  Throws
  /// std::invalid_argument on bad endpoints or an absent link.  Same cost
  /// model as insert_link.
  void remove_link(NodeId u, NodeId v);

 private:
  void build(const Graph& g, std::span<const EdgeSense> initial);

  std::size_t num_nodes_ = 0;
  std::vector<CsrPos> offsets_;            ///< size n+1; block boundaries
  std::vector<NodeId> nbr_;                ///< size 2m; neighbors, ascending per block
  std::vector<EdgeId> edge_;               ///< size 2m; edge ids, aligned with nbr_
  std::vector<CsrPos> mirror_;             ///< size 2m; same edge, other endpoint
  std::vector<NodeId> part_nbr_;           ///< size 2m; [in-block | out-block] per node
  std::vector<CsrPos> part_pos_;           ///< size 2m; adjacency positions, aligned
  std::vector<CsrPos> split_;              ///< size n; where the out-block starts
  std::vector<EdgeSense> initial_senses_;  ///< size m; the frozen initial orientation
};

}  // namespace lr

#pragma once

#include <optional>
#include <vector>

#include "graph/orientation.hpp"

/// \file digraph_algos.hpp
/// Algorithms over the directed view G' = (V, E') of an oriented graph.
///
/// These are the executable counterparts of the paper's global properties:
/// acyclicity (Theorems 4.3 / 5.5), destination orientation (the goal of
/// every link-reversal algorithm), and the bad-node count n_b that
/// parameterizes the Θ(n_b²) work bound.

namespace lr {

/// True iff the current orientation has no directed cycle (Kahn's
/// algorithm; O(n + m)).
bool is_acyclic(const Orientation& o);

/// A topological order of the current orientation, or std::nullopt if it
/// contains a cycle.  Position in the returned vector is the node's
/// left-to-right coordinate in the paper's planar-embedding argument.
std::optional<std::vector<NodeId>> topological_order(const Orientation& o);

/// The set of nodes that currently have a directed path to `destination`
/// (including the destination itself).  Computed by reverse BFS from the
/// destination; O(n + m).
std::vector<bool> reaches_destination(const Orientation& o, NodeId destination);

/// True iff *every* node has a directed path to `destination` — the
/// paper's definition of a destination-oriented graph.
bool is_destination_oriented(const Orientation& o, NodeId destination);

/// The paper's "bad" nodes: nodes with no directed path to `destination`.
/// |bad_nodes| = n_b in the Θ(n_b²) bound.
std::vector<NodeId> bad_nodes(const Orientation& o, NodeId destination);

/// Current sinks other than the destination.  A state with no such sinks is
/// quiescent: no reverse action is enabled.
std::vector<NodeId> sinks_excluding(const Orientation& o, NodeId destination);

/// If the orientation contains a directed cycle, returns one (as a node
/// sequence in cycle order, first node not repeated); otherwise
/// std::nullopt.  Used by tests to produce actionable failures.
std::optional<std::vector<NodeId>> find_cycle(const Orientation& o);

/// Length (hop count) of a shortest directed path from `from` to `to`, or
/// std::nullopt if unreachable.  BFS over current out-edges.
std::optional<std::size_t> directed_distance(const Orientation& o, NodeId from, NodeId to);

}  // namespace lr

#include "graph/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lr {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw std::invalid_argument("read_instance: line " + std::to_string(line) + ": " + message);
}

}  // namespace

void write_instance(std::ostream& os, const Instance& instance) {
  os << "lr-instance 1\n";
  os << "name " << instance.name << "\n";
  os << "nodes " << instance.graph.num_nodes() << "\n";
  os << "destination " << instance.destination << "\n";
  for (EdgeId e = 0; e < instance.graph.num_edges(); ++e) {
    os << "edge " << instance.graph.edge_u(e) << ' ' << instance.graph.edge_v(e) << ' '
       << (instance.senses[e] == EdgeSense::kForward ? "fwd" : "bwd") << "\n";
  }
  os << "end\n";
}

Instance read_instance(std::istream& is) {
  std::string line;
  std::size_t line_number = 0;
  const auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_number;
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_line()) parse_error(line_number, "empty input");
  if (line != "lr-instance 1") parse_error(line_number, "bad magic (expected 'lr-instance 1')");

  std::string name;
  std::size_t nodes = 0;
  bool have_nodes = false;
  NodeId destination = 0;
  bool have_destination = false;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<EdgeSense> senses;
  bool ended = false;

  while (next_line()) {
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "name") {
      std::getline(fields, name);
      if (!name.empty() && name.front() == ' ') name.erase(0, 1);
    } else if (keyword == "nodes") {
      if (!(fields >> nodes)) parse_error(line_number, "bad node count");
      have_nodes = true;
    } else if (keyword == "destination") {
      if (!(fields >> destination)) parse_error(line_number, "bad destination");
      have_destination = true;
    } else if (keyword == "edge") {
      NodeId u = 0, v = 0;
      std::string sense;
      if (!(fields >> u >> v >> sense)) parse_error(line_number, "bad edge line");
      if (sense != "fwd" && sense != "bwd") parse_error(line_number, "sense must be fwd or bwd");
      if (u >= v) parse_error(line_number, "edge endpoints must satisfy u < v");
      edges.emplace_back(u, v);
      senses.push_back(sense == "fwd" ? EdgeSense::kForward : EdgeSense::kBackward);
    } else if (keyword == "end") {
      ended = true;
      break;
    } else {
      parse_error(line_number, "unknown keyword '" + keyword + "'");
    }
  }
  if (!ended) parse_error(line_number, "missing 'end'");
  if (!have_nodes) parse_error(line_number, "missing 'nodes'");
  if (!have_destination) parse_error(line_number, "missing 'destination'");

  Instance instance;
  instance.graph = Graph(nodes, std::move(edges));  // validates endpoints/duplicates
  instance.senses = std::move(senses);
  if (destination >= nodes) parse_error(line_number, "destination out of range");
  instance.destination = destination;
  instance.name = name.empty() ? "unnamed" : name;
  return instance;
}

void save_instance(const std::string& path, const Instance& instance) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_instance: cannot open " + path);
  write_instance(file, instance);
  if (!file) throw std::runtime_error("save_instance: write failed for " + path);
}

Instance load_instance(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_instance: cannot open " + path);
  return read_instance(file);
}

}  // namespace lr

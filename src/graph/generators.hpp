#pragma once

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "graph/orientation.hpp"

/// \file generators.hpp
/// Workload generators: graph families and initial DAG orientations used by
/// the test suite, the benchmark harnesses (experiments E1–E8,
/// docs/EXPERIMENTS.md), and the scenario runner's topology axis
/// (runner/scenario.hpp).
///
/// Every generator is deterministic given its inputs; randomized ones take
/// a seeded std::mt19937_64 so all experiments are reproducible from a
/// printed seed.

namespace lr {

/// A self-contained workload: an undirected graph, an initial acyclic
/// orientation (as edge senses), and a destination node.
///
/// The Instance owns its Graph; call make_orientation() to obtain a fresh
/// mutable Orientation referencing it.  The Instance must outlive any
/// orientation it hands out.
struct Instance {
  Graph graph;                    ///< the undirected substrate G
  std::vector<EdgeSense> senses;  ///< the initial acyclic orientation G'_init
  NodeId destination = 0;         ///< the destination D
  std::string name;               ///< human-readable workload label

  /// A fresh mutable Orientation referencing this instance's graph.
  Orientation make_orientation() const { return Orientation(graph, senses); }
};

// ---------------------------------------------------------------------------
// Graph families (topology only)
// ---------------------------------------------------------------------------

/// Path with `n` nodes: 0 - 1 - ... - n-1.
Graph make_chain_graph(std::size_t n);

/// Cycle with `n >= 3` nodes.
Graph make_ring_graph(std::size_t n);

/// `rows x cols` grid.  Node (r, c) has id r*cols + c.
Graph make_grid_graph(std::size_t rows, std::size_t cols);

/// Complete graph on `n` nodes.
Graph make_complete_graph(std::size_t n);

/// Star: node 0 is the hub, 1..n-1 are leaves.
Graph make_star_graph(std::size_t n);

/// Complete binary tree with `n` nodes (node i's parent is (i-1)/2).
Graph make_binary_tree_graph(std::size_t n);

/// Uniformly random labeled tree (random attachment).
Graph make_random_tree_graph(std::size_t n, std::mt19937_64& rng);

/// Connected random graph: random spanning tree plus `extra_edges`
/// additional distinct non-tree edges (clamped to the complete graph).
Graph make_random_connected_graph(std::size_t n, std::size_t extra_edges, std::mt19937_64& rng);

/// Layered graph: `layers` layers of `width` nodes; every node has >= 1
/// edge into the next layer; extra inter-layer edges appear with
/// probability `p`.  Layer 0 contains only node 0 (the natural
/// destination).
Graph make_layered_graph(std::size_t layers, std::size_t width, double p, std::mt19937_64& rng);

/// Unit-disk graph — the standard model of a mobile ad-hoc network, the
/// deployment link reversal was designed for: `n` nodes placed uniformly
/// in the unit square, edges between pairs within distance `radius`.
/// Non-connected draws are retried (up to 64 times, then the radius is
/// grown by 25% and the process repeats), so the result is always
/// connected.
Graph make_unit_disk_graph(std::size_t n, double radius, std::mt19937_64& rng);

/// Barbell: two complete graphs of `clique_size` nodes joined by a path of
/// `bridge_length` nodes.  Stresses the "work funnels through a narrow
/// bridge" regime.
Graph make_barbell_graph(std::size_t clique_size, std::size_t bridge_length);

// ---------------------------------------------------------------------------
// Million-node families (canonically sorted edge emission — see below)
// ---------------------------------------------------------------------------
//
// The families in this section emit their edges in strictly ascending
// canonical (min, max) lexicographic order, which is exactly the
// `CsrBuilder` stream contract (graph/csr.hpp): a snapshot can be built
// by streaming the generator twice with no intermediate edge vector, and
// is byte-identical to the batch conversion of the corresponding Graph.

/// Streams the edges of a `rows x cols` torus (grid with wraparound; node
/// (r, c) has id r*cols + c, every node has degree 4) to `emit` in
/// strictly ascending canonical order.  Requires rows, cols >= 3 (smaller
/// wraps would create parallel edges).  The constant-degree, huge-diameter
/// regular topology for million-node sweeps: 10^6 nodes cost exactly
/// 2*10^6 edges.
void stream_torus_edges(std::size_t rows, std::size_t cols,
                        const std::function<void(NodeId, NodeId)>& emit);

/// The torus of `stream_torus_edges` as a materialized Graph.
Graph make_torus_graph(std::size_t rows, std::size_t cols);

/// Wide random connected graph: a random-attachment spanning tree (low
/// diameter, hence "wide") plus distinct random extra edges up to
/// `avg_degree * n / 2` total edges (clamped to the complete graph).
/// Built with a flat hash-key set and one final sort — no per-edge tree
/// nodes — so it generates million-node instances in seconds.  The edge
/// list is canonically sorted (CsrBuilder-streamable, see above).
Graph make_wide_random_graph(std::size_t n, double avg_degree, std::mt19937_64& rng);

// ---------------------------------------------------------------------------
// Rankings (initial acyclic orientations; edges point lower -> higher rank)
// ---------------------------------------------------------------------------

/// Identity ranking: node id is its rank.
std::vector<std::uint32_t> identity_ranking(std::size_t n);

/// Uniformly random permutation ranking.
std::vector<std::uint32_t> random_ranking(std::size_t n, std::mt19937_64& rng);

/// A ranking that makes the orientation destination-oriented: rank grows
/// with (randomly tie-broken) BFS distance from the destination, so every
/// non-destination node has an out-edge towards a strictly lower rank.
/// Precondition: `g` is connected.
std::vector<std::uint32_t> destination_oriented_ranking(const Graph& g, NodeId destination,
                                                        std::mt19937_64& rng);

// ---------------------------------------------------------------------------
// Ready-made instances
// ---------------------------------------------------------------------------

/// The Θ(n_b²) worst-case workload (experiment E2): a chain with the
/// destination at node 0 and every edge directed *away* from it, so all
/// `n - 1` other nodes are bad (n_b = n - 1) and reversal waves must sweep
/// the chain Θ(n_b) times.
Instance make_worst_case_chain(std::size_t n);

/// Random connected instance with a random acyclic initial orientation and
/// destination 0.  The general-purpose fuzz workload for E1/E3/E6.
Instance make_random_instance(std::size_t n, std::size_t extra_edges, std::mt19937_64& rng);

/// Layered instance oriented away from the destination: maximizes initial
/// bad nodes on a non-chain topology (E2's second gadget).
Instance make_layered_bad_instance(std::size_t layers, std::size_t width, double p,
                                   std::mt19937_64& rng);

/// Grid instance with a random acyclic orientation, destination at the
/// top-left corner.  Used by the social-cost experiment E3.
Instance make_grid_instance(std::size_t rows, std::size_t cols, std::mt19937_64& rng);

/// Instance guaranteed to contain initial sinks and sources besides the
/// destination (star with alternating edge directions), exercising NewPR's
/// dummy steps (experiment E4).
Instance make_sink_source_instance(std::size_t n);

/// Unit-disk (MANET) instance with a random acyclic initial orientation;
/// the destination is node 0 (a random position, i.e. a typical gateway).
Instance make_unit_disk_instance(std::size_t n, double radius, std::mt19937_64& rng);

/// Torus instance with a random acyclic orientation, destination 0.
Instance make_torus_instance(std::size_t rows, std::size_t cols, std::mt19937_64& rng);

/// Wide random instance with a random acyclic orientation, destination 0.
Instance make_wide_random_instance(std::size_t n, double avg_degree, std::mt19937_64& rng);

// ---------------------------------------------------------------------------
// Churn schedules (random-waypoint mobility)
// ---------------------------------------------------------------------------

/// A frozen instance plus a precomputed churn schedule for it: the
/// dynamic-topology workload of the E10 scale bench and the
/// `churn_events` sweep axis.
struct ChurnInstance {
  Instance instance;             ///< the initial (pre-churn) workload
  std::vector<LinkEvent> churn;  ///< link events, in application order
};

/// Random-waypoint MANET churn workload: `n` nodes placed as a connected
/// unit-disk graph, then a mobility-driven event schedule of at least
/// `min_events` link events.  Each mobility step teleports one node to a
/// fresh uniform waypoint and emits `down` events for the proximity links
/// it leaves and `up` events for the ones it enters (computed with a
/// spatial grid, O(local density) per step).  The schedule ends with a
/// healing suffix that returns every node's links to the initial
/// topology, so replaying the whole schedule restores the starting link
/// set exactly — the self-verification hook the E10 churn storm asserts
/// with CSR fingerprints.
///
/// The instance's initial orientation is the canonical all-forward one
/// (every edge min -> max), matching the default sense
/// `CsrGraph::insert_link` assigns to patched-in links: a snapshot
/// patched through the full schedule is byte-identical to the initial
/// snapshot.  This is a churn/scale workload; use the static families for
/// convergence measurements.
ChurnInstance make_waypoint_churn_instance(std::size_t n, double radius, std::size_t min_events,
                                           std::mt19937_64& rng);

}  // namespace lr

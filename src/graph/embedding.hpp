#pragma once

#include <vector>

#include "graph/orientation.hpp"

/// \file embedding.hpp
/// The left-right planar embedding used by the paper's acyclicity proof.
///
/// Section 4.2: "Since the input to the PR algorithm is a DAG, we can embed
/// it in a plane, ensuring all edges are initially directed from left to
/// right."  Concretely we assign each node a distinct position — its index
/// in a topological order of the *initial* orientation — so that every
/// initial edge goes from a smaller position to a larger one.  The
/// embedding is fixed for the whole execution even though edge directions
/// change; Invariants 4.1 and 4.2 are stated relative to it.

namespace lr {

class LeftRightEmbedding {
 public:
  /// Builds the embedding from the initial orientation.  Throws
  /// std::invalid_argument if the orientation is not acyclic (the paper's
  /// model requires a DAG as input).
  explicit LeftRightEmbedding(const Orientation& initial);

  /// Builds an embedding directly from per-node positions (used by tests).
  explicit LeftRightEmbedding(std::vector<std::uint32_t> positions)
      : position_(std::move(positions)) {}

  /// The left-to-right coordinate of node `u`; smaller means further left.
  std::uint32_t position(NodeId u) const { return position_[u]; }

  /// True iff `u` is strictly to the left of `v`.
  bool left_of(NodeId u, NodeId v) const { return position_[u] < position_[v]; }

  /// True iff, in orientation `o`, the edge `e` is directed from its left
  /// endpoint to its right endpoint.
  bool directed_left_to_right(const Orientation& o, EdgeId e) const {
    return left_of(o.tail(e), o.head(e));
  }

  /// Number of embedded nodes.
  std::size_t num_nodes() const noexcept { return position_.size(); }

 private:
  std::vector<std::uint32_t> position_;
};

}  // namespace lr

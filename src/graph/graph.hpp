#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

/// \file graph.hpp
/// The undirected graph substrate G = (V, E).
///
/// G is immutable for the lifetime of a link-reversal execution: the paper
/// assumes "no nodes and edges are added or removed from the graph", so the
/// topology is frozen at construction and only the *orientation* (see
/// orientation.hpp) changes.  The routing layer (src/routing) models
/// topology churn by constructing successive Graph values.

namespace lr {

/// An incidence record: the neighbor reached through an edge, plus the
/// edge's id so per-edge state can be looked up in O(1).
struct Incidence {
  NodeId neighbor = kNoNode;  ///< the node reached through the edge
  EdgeId edge = kNoEdge;      ///< the edge's id (for per-edge state)

  /// Member-wise equality.
  friend bool operator==(const Incidence&, const Incidence&) = default;
};

/// Immutable undirected multigraph-free graph with dense node/edge ids.
///
/// Invariants established at construction:
///  * no self loops,
///  * no parallel edges,
///  * endpoints of edge e are stored canonically as (a, b) with a < b.
class Graph {
 public:
  /// Builds a graph with `num_nodes` nodes and the given undirected edges.
  /// Throws std::invalid_argument on self loops, parallel edges, or
  /// out-of-range endpoints, and std::overflow_error when the adjacency
  /// would exceed the 32-bit CSR position space (2·E >= 2^32; see the
  /// offset-width policy in graph/types.hpp).
  Graph(std::size_t num_nodes, std::vector<std::pair<NodeId, NodeId>> edges);

  /// Already-validated construction parts for the trusted fast path
  /// (`from_trusted_parts`): the exact private representation of a Graph.
  struct TrustedParts {
    std::vector<std::pair<NodeId, NodeId>> endpoints;  ///< by EdgeId, canonical
    std::vector<Incidence> adjacency;                  ///< CSR payload, ascending per node
    std::vector<CsrPos> offsets;                       ///< CSR offsets, size n+1
  };

  /// Adopts `parts` without validation or sorting — the O(m) reload path
  /// for representations whose invariants are already established (the
  /// mmap snapshot loader reconstructs a Graph from a checksummed
  /// `CsrGraph`, whose canonical order and dedup were validated when the
  /// snapshot was first built).  Precondition: `parts` satisfies every
  /// class invariant; passing unvalidated data breaks the graph silently.
  static Graph from_trusted_parts(TrustedParts parts);

  /// An empty graph (0 nodes).  Useful as a placeholder before assignment.
  Graph() = default;

  /// Number of nodes.
  std::size_t num_nodes() const noexcept { return adjacency_offsets_.empty() ? 0 : adjacency_offsets_.size() - 1; }
  /// Number of undirected edges.
  std::size_t num_edges() const noexcept { return endpoints_.size(); }

  /// Smaller endpoint of edge `e` (canonical order).
  NodeId edge_u(EdgeId e) const { return endpoints_[e].first; }
  /// Larger endpoint of edge `e` (canonical order).
  NodeId edge_v(EdgeId e) const { return endpoints_[e].second; }

  /// Given one endpoint of `e`, returns the other.  Precondition: `n` is an
  /// endpoint of `e`.
  NodeId other_endpoint(EdgeId e, NodeId n) const {
    return endpoints_[e].first == n ? endpoints_[e].second : endpoints_[e].first;
  }

  /// True iff `n` is an endpoint of edge `e`.
  bool is_endpoint(EdgeId e, NodeId n) const {
    return endpoints_[e].first == n || endpoints_[e].second == n;
  }

  /// The paper's `nbrs_u`: all incidences of node `u`, in ascending
  /// neighbor order.  The returned span is valid as long as the graph lives.
  std::span<const Incidence> neighbors(NodeId u) const {
    return std::span<const Incidence>(adjacency_)
        .subspan(adjacency_offsets_[u], adjacency_offsets_[u + 1] - adjacency_offsets_[u]);
  }

  /// Degree of node `u`.
  std::size_t degree(NodeId u) const {
    return adjacency_offsets_[u + 1] - adjacency_offsets_[u];
  }

  /// Looks up the edge between `u` and `v`; returns kNoEdge if absent.
  /// O(log deg(u)) via binary search over the sorted adjacency of `u`.
  EdgeId edge_between(NodeId u, NodeId v) const;

  /// True iff `u` and `v` are adjacent in G.
  bool adjacent(NodeId u, NodeId v) const { return edge_between(u, v) != kNoEdge; }

  /// True iff G is connected (the model assumes every node can eventually
  /// be oriented towards the destination, which requires connectivity).
  bool is_connected() const;

  /// All edges as canonical (u, v) pairs, indexed by EdgeId.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const noexcept { return endpoints_; }

  /// Human-readable summary, e.g. "Graph(n=5, m=7)".
  std::string describe() const;

  /// Structural equality: same node count and identical edge list.
  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<std::pair<NodeId, NodeId>> endpoints_;   // by EdgeId, canonical
  std::vector<Incidence> adjacency_;                   // CSR payload
  /// CSR offsets, size n+1.  32-bit by the offset-width policy
  /// (graph/types.hpp): half the memory of the historical std::size_t
  /// offsets at large n, guarded against 2m >= 2^32 at construction.
  std::vector<CsrPos> adjacency_offsets_;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

/// \file orientation.hpp
/// The mutable directed version G' of the fixed undirected graph G.
///
/// The paper stores two state variables `dir[u,v]` and `dir[v,u]` per edge
/// and proves (Invariant 3.1) that they always disagree.  We store a single
/// *sense* bit per edge relative to the canonical endpoint order, which
/// makes Invariant 3.1 true by construction; the two-sided view of the
/// paper is recovered through `dir_from()`.  The invariant checker in
/// src/core still exercises the two-sided API so the paper's statement is
/// tested rather than merely assumed.
///
/// The orientation also maintains per-node out-degrees and an incrementally
/// updated set of current sinks, because every link-reversal automaton's
/// precondition is "u is a sink" and enabled-action enumeration must be
/// cheap (experiment E8.3 measures this ablation; docs/EXPERIMENTS.md).

namespace lr {

/// Direction of an edge relative to its canonical endpoints (u < v).
enum class EdgeSense : std::uint8_t {
  kForward,   ///< points u -> v (from smaller id to larger id)
  kBackward,  ///< points v -> u
};

class Orientation {
 public:
  /// Creates an orientation of `g` from one sense per edge (indexed by
  /// EdgeId).  Throws std::invalid_argument on size mismatch.
  Orientation(const Graph& g, std::vector<EdgeSense> senses);

  /// Creates the orientation induced by a ranking: every edge points from
  /// its lower-ranked endpoint to its higher-ranked endpoint ("left to
  /// right" in the paper's planar-embedding argument).  `rank` must be a
  /// permutation-like vector of distinct values, one per node; the result
  /// is acyclic by construction.
  static Orientation from_ranking(const Graph& g, std::span<const std::uint32_t> rank);

  /// Underlying undirected graph (not owned; must outlive the orientation).
  const Graph& graph() const noexcept { return *graph_; }

  /// Current sense of edge `e`.
  EdgeSense sense(EdgeId e) const { return senses_[e]; }

  /// All edge senses, indexed by EdgeId.  Useful for snapshotting G' and
  /// for re-creating an orientation later (generators, trace replay).
  const std::vector<EdgeSense>& senses() const noexcept { return senses_; }

  /// Node the edge currently points *to*.
  NodeId head(EdgeId e) const {
    return senses_[e] == EdgeSense::kForward ? graph_->edge_v(e) : graph_->edge_u(e);
  }

  /// Node the edge currently points *from*.
  NodeId tail(EdgeId e) const {
    return senses_[e] == EdgeSense::kForward ? graph_->edge_u(e) : graph_->edge_v(e);
  }

  /// The paper's `dir[u, v]` for endpoint `u` of edge `e`:
  /// kIn if the edge points towards u, kOut otherwise.
  Dir dir_from(NodeId u, EdgeId e) const {
    return head(e) == u ? Dir::kIn : Dir::kOut;
  }

  /// The paper's `dir[u, v]` addressed by the node pair.  Precondition:
  /// {u, v} ∈ E.
  Dir dir(NodeId u, NodeId v) const { return dir_from(u, graph_->edge_between(u, v)); }

  /// Reverses edge `e` (the elementary effect of every reverse action).
  /// Updates degrees and the sink set in O(1) amortized.
  void reverse_edge(EdgeId e);

  /// Points edge `e` away from node `u` if it is not already; no-op
  /// otherwise.  Precondition: u is an endpoint of e.
  void point_away_from(NodeId u, EdgeId e) {
    if (head(e) == u) reverse_edge(e);
  }

  /// Number of edges currently pointing away from `u`.
  std::size_t out_degree(NodeId u) const { return out_degree_[u]; }
  /// Number of edges currently pointing towards `u`.
  std::size_t in_degree(NodeId u) const { return graph_->degree(u) - out_degree_[u]; }

  /// True iff every incident edge of `u` is incoming.  Matches the paper's
  /// sink precondition: a degree-0 node is vacuously a sink.
  bool is_sink(NodeId u) const { return out_degree_[u] == 0; }

  /// True iff every incident edge of `u` is outgoing (and u has at least
  /// one edge, matching the usual convention that an isolated node is a
  /// sink, not a source).
  bool is_source(NodeId u) const {
    return graph_->degree(u) > 0 && out_degree_[u] == graph_->degree(u);
  }

  /// Current sinks, maintained incrementally; unordered.  Includes the
  /// destination if it happens to be a sink — callers exclude it.
  std::span<const NodeId> sinks() const noexcept { return sinks_; }

  /// Current out-neighbors of `u` (computed on demand, ascending order).
  std::vector<NodeId> out_neighbors(NodeId u) const;

  /// Current in-neighbors of `u` (computed on demand, ascending order).
  std::vector<NodeId> in_neighbors(NodeId u) const;

  /// Total number of single-edge reversals applied since construction.
  /// This is the work measure used by the Θ(n_b²) analysis.
  std::uint64_t reversal_count() const noexcept { return reversal_count_; }

  /// Directed-graph equality: same topology and same edge senses.  Used by
  /// the simulation relations (s.G' = t.G').
  friend bool operator==(const Orientation& a, const Orientation& b) {
    return *a.graph_ == *b.graph_ && a.senses_ == b.senses_;
  }

 private:
  void rebuild_degrees_and_sinks();
  void add_sink(NodeId u);
  void remove_sink(NodeId u);

  const Graph* graph_ = nullptr;
  std::vector<EdgeSense> senses_;
  std::vector<std::uint32_t> out_degree_;
  std::vector<NodeId> sinks_;           // unordered set of current sinks
  std::vector<std::uint32_t> sink_pos_; // index into sinks_, or npos
  std::uint64_t reversal_count_ = 0;

  static constexpr std::uint32_t kNotSink = std::numeric_limits<std::uint32_t>::max();
};

}  // namespace lr

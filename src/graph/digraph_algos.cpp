#include "graph/digraph_algos.hpp"

#include <algorithm>
#include <queue>

namespace lr {

std::optional<std::vector<NodeId>> topological_order(const Orientation& o) {
  const Graph& g = o.graph();
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> remaining_in(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    remaining_in[u] = static_cast<std::uint32_t>(o.in_degree(u));
  }
  std::queue<NodeId> ready;
  for (NodeId u = 0; u < n; ++u) {
    if (remaining_in[u] == 0) ready.push(u);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.front();
    ready.pop();
    order.push_back(u);
    for (const Incidence& inc : g.neighbors(u)) {
      if (o.dir_from(u, inc.edge) == Dir::kOut) {
        if (--remaining_in[inc.neighbor] == 0) ready.push(inc.neighbor);
      }
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_acyclic(const Orientation& o) { return topological_order(o).has_value(); }

std::vector<bool> reaches_destination(const Orientation& o, NodeId destination) {
  const Graph& g = o.graph();
  std::vector<bool> reaches(g.num_nodes(), false);
  std::queue<NodeId> frontier;
  reaches[destination] = true;
  frontier.push(destination);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    // Traverse edges *into* u: their tails can reach the destination via u.
    for (const Incidence& inc : g.neighbors(u)) {
      if (o.dir_from(u, inc.edge) == Dir::kIn && !reaches[inc.neighbor]) {
        reaches[inc.neighbor] = true;
        frontier.push(inc.neighbor);
      }
    }
  }
  return reaches;
}

bool is_destination_oriented(const Orientation& o, NodeId destination) {
  const auto reaches = reaches_destination(o, destination);
  return std::all_of(reaches.begin(), reaches.end(), [](bool b) { return b; });
}

std::vector<NodeId> bad_nodes(const Orientation& o, NodeId destination) {
  const auto reaches = reaches_destination(o, destination);
  std::vector<NodeId> bad;
  for (NodeId u = 0; u < reaches.size(); ++u) {
    if (!reaches[u]) bad.push_back(u);
  }
  return bad;
}

std::vector<NodeId> sinks_excluding(const Orientation& o, NodeId destination) {
  std::vector<NodeId> result;
  for (const NodeId u : o.sinks()) {
    if (u != destination) result.push_back(u);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::optional<std::vector<NodeId>> find_cycle(const Orientation& o) {
  const Graph& g = o.graph();
  const std::size_t n = g.num_nodes();
  enum class Mark : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Mark> mark(n, Mark::kWhite);
  std::vector<NodeId> parent(n, kNoNode);

  // Iterative DFS over out-edges, tracking the gray path to reconstruct a
  // cycle when a back edge is found.
  for (NodeId root = 0; root < n; ++root) {
    if (mark[root] != Mark::kWhite) continue;
    std::vector<std::pair<NodeId, std::size_t>> stack;  // node, next-incidence index
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGray;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      const auto nbrs = g.neighbors(u);
      bool descended = false;
      while (idx < nbrs.size()) {
        const Incidence inc = nbrs[idx++];
        if (o.dir_from(u, inc.edge) != Dir::kOut) continue;
        const NodeId v = inc.neighbor;
        if (mark[v] == Mark::kGray) {
          // Found a cycle: walk parents from u back to v.
          std::vector<NodeId> cycle{v};
          for (NodeId w = u; w != v; w = parent[w]) cycle.push_back(w);
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (mark[v] == Mark::kWhite) {
          mark[v] = Mark::kGray;
          parent[v] = u;
          stack.emplace_back(v, 0);
          descended = true;
          break;
        }
      }
      if (!descended && (stack.empty() || stack.back().first == u)) {
        if (idx >= nbrs.size()) {
          mark[u] = Mark::kBlack;
          stack.pop_back();
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> directed_distance(const Orientation& o, NodeId from, NodeId to) {
  const Graph& g = o.graph();
  std::vector<std::size_t> dist(g.num_nodes(), std::numeric_limits<std::size_t>::max());
  std::queue<NodeId> frontier;
  dist[from] = 0;
  frontier.push(from);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (u == to) return dist[u];
    for (const Incidence& inc : g.neighbors(u)) {
      if (o.dir_from(u, inc.edge) == Dir::kOut &&
          dist[inc.neighbor] == std::numeric_limits<std::size_t>::max()) {
        dist[inc.neighbor] = dist[u] + 1;
        frontier.push(inc.neighbor);
      }
    }
  }
  return std::nullopt;
}

}  // namespace lr

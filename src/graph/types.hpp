#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental identifier types shared by every module in the library.
///
/// The paper (Radeva & Lynch 2011) models the system as an undirected graph
/// G = (V, E) with a distinguished destination node D, plus a mutable
/// directed version G' that assigns exactly one direction to every edge.
/// We use dense integer ids for both nodes and edges so that all per-node
/// and per-edge state can live in flat vectors.

namespace lr {

/// Dense node identifier: nodes of a graph with n nodes are 0..n-1.
using NodeId = std::uint32_t;

/// Dense edge identifier: edges of a graph with m edges are 0..m-1.
using EdgeId = std::uint32_t;

/// Flat position index into a CSR adjacency layout; positions run over
/// `[0, 2m)` with node `u`'s block at `[offsets[u], offsets[u+1])`.
///
/// Offset-width policy (shared by `Graph` and `CsrGraph`): node and edge
/// *counts* are `std::size_t` end-to-end, but adjacency *positions* are
/// 32-bit on purpose — position arrays dominate graph memory (five
/// 2m-sized arrays in a CsrGraph snapshot), so 32-bit positions halve the
/// footprint of every million-node topology relative to `std::size_t`.
/// The width limits a graph to 2·E < 2^32 adjacency slots (~2.1 billion
/// undirected edges); every CSR construction path guards that bound
/// loudly (`std::overflow_error`) instead of wrapping silently.
using CsrPos = std::uint32_t;

/// One past the largest representable CSR position: constructions with
/// `2 * num_edges() >= kCsrPosLimit` must be rejected.
inline constexpr std::uint64_t kCsrPosLimit = std::uint64_t{1} << 32;

/// One undirected topology event of a churn schedule: the link {u, v}
/// comes up or goes down.  Produced by the churn-schedule generators
/// (graph/generators.hpp), consumed in batch by
/// `DynamicHeightsDag::apply_events` and patched into frozen snapshots by
/// `CsrGraph::insert_link` / `remove_link`.
struct LinkEvent {
  NodeId u = 0;     ///< one endpoint
  NodeId v = 0;     ///< the other endpoint
  bool up = false;  ///< true = link comes up, false = link goes down
};

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

/// Direction of an edge from the perspective of one of its endpoints,
/// matching the paper's per-node `dir[u, v] ∈ {in, out}` state variable.
enum class Dir : std::uint8_t {
  kIn,   ///< The edge currently points *towards* this endpoint.
  kOut,  ///< The edge currently points *away from* this endpoint.
};

/// Flips `kIn` to `kOut` and vice versa (Invariant 3.1: the two endpoints
/// of an edge always see opposite directions).
constexpr Dir opposite(Dir d) noexcept {
  return d == Dir::kIn ? Dir::kOut : Dir::kIn;
}

}  // namespace lr

#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental identifier types shared by every module in the library.
///
/// The paper (Radeva & Lynch 2011) models the system as an undirected graph
/// G = (V, E) with a distinguished destination node D, plus a mutable
/// directed version G' that assigns exactly one direction to every edge.
/// We use dense integer ids for both nodes and edges so that all per-node
/// and per-edge state can live in flat vectors.

namespace lr {

/// Dense node identifier: nodes of a graph with n nodes are 0..n-1.
using NodeId = std::uint32_t;

/// Dense edge identifier: edges of a graph with m edges are 0..m-1.
using EdgeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

/// Direction of an edge from the perspective of one of its endpoints,
/// matching the paper's per-node `dir[u, v] ∈ {in, out}` state variable.
enum class Dir : std::uint8_t {
  kIn,   ///< The edge currently points *towards* this endpoint.
  kOut,  ///< The edge currently points *away from* this endpoint.
};

/// Flips `kIn` to `kOut` and vice versa (Invariant 3.1: the two endpoints
/// of an edge always see opposite directions).
constexpr Dir opposite(Dir d) noexcept {
  return d == Dir::kIn ? Dir::kOut : Dir::kIn;
}

}  // namespace lr

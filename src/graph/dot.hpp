#pragma once

#include <iosfwd>
#include <string>

#include "graph/embedding.hpp"
#include "graph/orientation.hpp"

/// \file dot.hpp
/// Graphviz (DOT) export of oriented graphs — the debugging view for every
/// layer: examples dump DAG snapshots, failing property tests can render
/// their counterexample states, and the docs' figures are generated from
/// these functions.  The rendered pictures are the paper's Section 2
/// objects (the directed version G' with its destination D) made visible;
/// `lr_cli run` pipes them to stdout.

namespace lr {

/// Rendering options for write_dot().
struct DotOptions {
  std::string graph_name = "G";      ///< DOT graph identifier
  NodeId destination = kNoNode;      ///< rendered as a doublecircle if set
  const LeftRightEmbedding* embedding = nullptr;  ///< adds rank hints if set
  bool highlight_sinks = true;       ///< sinks filled gray
};

/// Writes the current orientation as a DOT digraph.
void write_dot(std::ostream& os, const Orientation& orientation, const DotOptions& options = {});

/// Convenience: DOT text as a string.
std::string to_dot(const Orientation& orientation, const DotOptions& options = {});

}  // namespace lr

#pragma once

#include <iosfwd>
#include <string>

#include "graph/generators.hpp"

/// \file serialize.hpp
/// Plain-text serialization of workload instances, so experiments can pin
/// exact inputs to disk, failing tests can dump reproducers, and external
/// tools can inject topologies.
///
/// Format (line oriented, '#' comments allowed):
///
///   lr-instance 1           # magic + version
///   name <free text>
///   nodes <n>
///   destination <d>
///   edge <u> <v> <fwd|bwd>  # one per edge; fwd = points u->v with u < v
///   end
///
/// Senses are relative to the canonical (smaller, larger) endpoint order,
/// matching EdgeSense.

namespace lr {

/// Writes `instance` in the format above.
void write_instance(std::ostream& os, const Instance& instance);

/// Parses an instance; throws std::invalid_argument with a line number on
/// malformed input.
Instance read_instance(std::istream& is);

/// File convenience wrapper (throws std::runtime_error on I/O failure).
void save_instance(const std::string& path, const Instance& instance);
/// \copydoc save_instance
Instance load_instance(const std::string& path);

}  // namespace lr

#include "graph/csr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace lr {

namespace {

constexpr CsrPos kUnseenPos = std::numeric_limits<CsrPos>::max();

std::vector<EdgeSense> all_forward(std::size_t m) {
  return std::vector<EdgeSense>(m, EdgeSense::kForward);
}

}  // namespace

CsrGraph::CsrGraph(const Graph& g) { build(g, all_forward(g.num_edges())); }

CsrGraph::CsrGraph(const Graph& g, std::span<const EdgeSense> initial) {
  if (initial.size() != g.num_edges()) {
    throw std::invalid_argument("CsrGraph: one initial sense per edge required");
  }
  build(g, initial);
}

void CsrGraph::rebind() noexcept {
  v_offsets_ = offsets_;
  v_nbr_ = nbr_;
  v_edge_ = edge_;
  v_mirror_ = mirror_;
  v_part_nbr_ = part_nbr_;
  v_part_pos_ = part_pos_;
  v_split_ = split_;
  v_senses_ = initial_senses_;
}

CsrGraph::CsrGraph(const CsrGraph& other)
    : num_nodes_(other.num_nodes_),
      borrowed_(other.borrowed_),
      offsets_(other.offsets_),
      nbr_(other.nbr_),
      edge_(other.edge_),
      mirror_(other.mirror_),
      part_nbr_(other.part_nbr_),
      part_pos_(other.part_pos_),
      split_(other.split_),
      initial_senses_(other.initial_senses_) {
  if (borrowed_) {
    // Both copies alias the same external memory: copy the views.
    v_offsets_ = other.v_offsets_;
    v_nbr_ = other.v_nbr_;
    v_edge_ = other.v_edge_;
    v_mirror_ = other.v_mirror_;
    v_part_nbr_ = other.v_part_nbr_;
    v_part_pos_ = other.v_part_pos_;
    v_split_ = other.v_split_;
    v_senses_ = other.v_senses_;
  } else {
    rebind();
  }
}

CsrGraph& CsrGraph::operator=(const CsrGraph& other) {
  if (this != &other) {
    CsrGraph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

CsrGraph::CsrGraph(CsrGraph&& other) noexcept { *this = std::move(other); }

CsrGraph& CsrGraph::operator=(CsrGraph&& other) noexcept {
  if (this == &other) return *this;
  num_nodes_ = other.num_nodes_;
  borrowed_ = other.borrowed_;
  offsets_ = std::move(other.offsets_);
  nbr_ = std::move(other.nbr_);
  edge_ = std::move(other.edge_);
  mirror_ = std::move(other.mirror_);
  part_nbr_ = std::move(other.part_nbr_);
  part_pos_ = std::move(other.part_pos_);
  split_ = std::move(other.split_);
  initial_senses_ = std::move(other.initial_senses_);
  if (borrowed_) {
    v_offsets_ = other.v_offsets_;
    v_nbr_ = other.v_nbr_;
    v_edge_ = other.v_edge_;
    v_mirror_ = other.v_mirror_;
    v_part_nbr_ = other.v_part_nbr_;
    v_part_pos_ = other.v_part_pos_;
    v_split_ = other.v_split_;
    v_senses_ = other.v_senses_;
  } else {
    rebind();
  }
  other.num_nodes_ = 0;
  other.borrowed_ = false;
  other.rebind();  // moved-from: empty views over its (moved-from) vectors
  return *this;
}

CsrGraph CsrGraph::borrow(const BorrowedArrays& arrays) {
  const std::size_t n = arrays.num_nodes;
  const std::size_t m = arrays.senses.size();
  const bool consistent = arrays.offsets.size() == n + 1 && arrays.nbr.size() == 2 * m &&
                          arrays.edge.size() == 2 * m && arrays.mirror.size() == 2 * m &&
                          arrays.part_nbr.size() == 2 * m && arrays.part_pos.size() == 2 * m &&
                          arrays.split.size() == n &&
                          (n == 0 || arrays.offsets.back() == 2 * m);
  if (!consistent) {
    throw std::invalid_argument("CsrGraph::borrow: inconsistent array sizes");
  }
  CsrGraph g;
  g.num_nodes_ = n;
  g.borrowed_ = true;
  g.v_offsets_ = arrays.offsets;
  g.v_nbr_ = arrays.nbr;
  g.v_edge_ = arrays.edge;
  g.v_mirror_ = arrays.mirror;
  g.v_part_nbr_ = arrays.part_nbr;
  g.v_part_pos_ = arrays.part_pos;
  g.v_split_ = arrays.split;
  g.v_senses_ = arrays.senses;
  return g;
}

void CsrGraph::materialize() {
  if (!borrowed_) return;
  offsets_.assign(v_offsets_.begin(), v_offsets_.end());
  nbr_.assign(v_nbr_.begin(), v_nbr_.end());
  edge_.assign(v_edge_.begin(), v_edge_.end());
  mirror_.assign(v_mirror_.begin(), v_mirror_.end());
  part_nbr_.assign(v_part_nbr_.begin(), v_part_nbr_.end());
  part_pos_.assign(v_part_pos_.begin(), v_part_pos_.end());
  split_.assign(v_split_.begin(), v_split_.end());
  initial_senses_.assign(v_senses_.begin(), v_senses_.end());
  borrowed_ = false;
  rebind();
}

std::uint64_t CsrGraph::fingerprint() const {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (x >> (8 * i)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  mix(num_nodes_);
  for (const CsrPos x : v_offsets_) mix(x);
  for (const NodeId x : v_nbr_) mix(x);
  for (const EdgeId x : v_edge_) mix(x);
  for (const CsrPos x : v_mirror_) mix(x);
  for (const NodeId x : v_part_nbr_) mix(x);
  for (const CsrPos x : v_part_pos_) mix(x);
  for (const CsrPos x : v_split_) mix(x);
  for (const EdgeSense s : v_senses_) mix(s == EdgeSense::kForward ? 1u : 0u);
  return hash;
}

void CsrGraph::build(const Graph& g, std::span<const EdgeSense> initial) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  num_nodes_ = n;
  initial_senses_.assign(initial.begin(), initial.end());

  offsets_.assign(n + 1, 0);
  nbr_.resize(2 * m);
  edge_.resize(2 * m);
  mirror_.resize(2 * m);
  part_nbr_.resize(2 * m);
  part_pos_.resize(2 * m);
  split_.assign(n, 0);

  // Adjacency: copy Graph's CSR payload (already ascending per node) into
  // the flat id arrays, linking mirror positions through a per-edge slot.
  std::vector<CsrPos> first_pos(m, kUnseenPos);
  CsrPos p = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u] = p;
    for (const Incidence& inc : g.neighbors(u)) {
      nbr_[p] = inc.neighbor;
      edge_[p] = inc.edge;
      if (first_pos[inc.edge] == kUnseenPos) {
        first_pos[inc.edge] = p;
      } else {
        mirror_[p] = first_pos[inc.edge];
        mirror_[first_pos[inc.edge]] = p;
      }
      ++p;
    }
  }
  offsets_[n] = p;

  rebind();
  fill_partition();
}

void CsrGraph::fill_partition() {
  // Initial in/out partition: in-block first, out-block second, both in
  // ascending neighbor order because the adjacency scan is ascending.
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const CsrPos begin = offsets_[u];
    const CsrPos end = offsets_[u + 1];
    CsrPos in_cursor = begin;
    for (CsrPos q = begin; q < end; ++q) {
      if (!points_out_of(q, u, initial_senses_)) ++in_cursor;
    }
    split_[u] = in_cursor;
    CsrPos out_cursor = in_cursor;
    in_cursor = begin;
    for (CsrPos q = begin; q < end; ++q) {
      CsrPos& cursor = points_out_of(q, u, initial_senses_) ? out_cursor : in_cursor;
      part_nbr_[cursor] = nbr_[q];
      part_pos_[cursor] = q;
      ++cursor;
    }
  }
}

namespace {

/// Inserts `first_value` / `second_value` at ascending positions
/// `first` / `second` of `values` (old coordinates: the second value lands
/// at `second + 1` after both inserts) — the shared shape of every
/// double-entry array patch below.
template <typename T>
void double_insert(std::vector<T>& values, CsrPos first, T first_value, CsrPos second,
                   T second_value) {
  values.insert(values.begin() + second, second_value);  // later point first:
  values.insert(values.begin() + first, first_value);    // `first` stays valid
}

/// Erases the entries at ascending positions `first` < `second`.
template <typename T>
void double_erase(std::vector<T>& values, CsrPos first, CsrPos second) {
  values.erase(values.begin() + second);
  values.erase(values.begin() + first);
}

}  // namespace

void CsrGraph::insert_link(NodeId u, NodeId v, EdgeSense sense) {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) {
    throw std::invalid_argument("CsrGraph::insert_link: bad endpoints");
  }
  materialize();  // never patch borrowed (possibly read-only mmap'd) memory
  if (position_of(u, v).has_value()) {
    throw std::invalid_argument("CsrGraph::insert_link: link already present");
  }
  const NodeId a = std::min(u, v);
  const NodeId b = std::max(u, v);

  // The new edge's id is its rank in the canonical sorted edge list (the
  // class precondition keeps existing ids equal to their ranks).  Each
  // edge is counted once, at its smaller endpoint's block.
  EdgeId e_new = 0;
  for (NodeId w = 0; w < a; ++w) {
    for (const NodeId x : neighbors(w)) {
      if (x > w) ++e_new;
    }
  }
  for (const NodeId x : neighbors(a)) {
    if (x > a && x < b) ++e_new;
  }
  for (EdgeId& e : edge_) {
    if (e >= e_new) ++e;
  }
  initial_senses_.insert(initial_senses_.begin() + e_new, sense);

  // Adjacency insertion points in old position coordinates.  When they
  // coincide (the blocks of u and v abut with nothing between), the entry
  // belonging to the earlier block must land first.
  const auto insert_point = [this](NodeId owner, NodeId neighbor) {
    const auto nbrs = neighbors(owner);
    return offsets_[owner] +
           static_cast<CsrPos>(std::lower_bound(nbrs.begin(), nbrs.end(), neighbor) -
                               nbrs.begin());
  };
  const CsrPos iu = insert_point(u, v);
  const CsrPos iv = insert_point(v, u);
  const bool u_entry_first = iu < iv || (iu == iv && u < v);
  const CsrPos first = u_entry_first ? iu : iv;
  const CsrPos second = u_entry_first ? iv : iu;
  const auto map_pos = [first, second](CsrPos p) {
    return p + (p >= first ? 1u : 0u) + (p >= second ? 1u : 0u);
  };
  const CsrPos new_pu = u_entry_first ? first : second + 1;  // v inside u's block
  const CsrPos new_pv = u_entry_first ? second + 1 : first;  // u inside v's block

  // Partition insertion points, computed against the still-unshifted
  // offsets: the new neighbor joins the in- or out-half of each block
  // depending on which way the new edge points, keeping the half ascending.
  const bool out_of_u = (sense == EdgeSense::kForward) == (u == a);
  const NodeId in_endpoint = out_of_u ? v : u;
  const auto partition_point = [this](NodeId owner, NodeId neighbor, bool out_half) {
    const CsrPos begin = out_half ? split_[owner] : offsets_[owner];
    const CsrPos end = out_half ? offsets_[owner + 1] : split_[owner];
    const auto half_begin = part_nbr_.begin() + begin;
    const auto half_end = part_nbr_.begin() + end;
    return begin + static_cast<CsrPos>(std::lower_bound(half_begin, half_end, neighbor) -
                                       half_begin);
  };
  const CsrPos ju = partition_point(u, v, out_of_u);
  const CsrPos jv = partition_point(v, u, !out_of_u);
  const bool u_part_first = ju < jv || (ju == jv && u < v);
  const CsrPos part_first = u_part_first ? ju : jv;
  const CsrPos part_second = u_part_first ? jv : ju;

  // Patch the aligned adjacency arrays: remap stored positions, then
  // double-insert the two new entries (which mirror each other).
  for (CsrPos& m : mirror_) m = map_pos(m);
  for (CsrPos& p : part_pos_) p = map_pos(p);
  double_insert(nbr_, first, u_entry_first ? v : u, second, u_entry_first ? u : v);
  double_insert(edge_, first, e_new, second, e_new);
  double_insert(mirror_, first, second + 1, second, first);
  double_insert(part_nbr_, part_first, u_part_first ? v : u, part_second,
                u_part_first ? u : v);
  double_insert(part_pos_, part_first, u_part_first ? new_pu : new_pv, part_second,
                u_part_first ? new_pv : new_pu);

  // Offsets and partition splits in one pass: block starts after u / v
  // shift, and the receiving endpoint's in-half grows by one.
  for (NodeId w = 0; w < num_nodes_; ++w) {
    const CsrPos in_degree = split_[w] - offsets_[w];
    offsets_[w] += (w > u ? 1u : 0u) + (w > v ? 1u : 0u);
    split_[w] = offsets_[w] + in_degree + (w == in_endpoint ? 1u : 0u);
  }
  offsets_[num_nodes_] += 2;
  rebind();  // the double-inserts may have reallocated the arrays
}

void CsrGraph::remove_link(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) {
    throw std::invalid_argument("CsrGraph::remove_link: bad endpoints");
  }
  materialize();  // never patch borrowed (possibly read-only mmap'd) memory
  const auto pu_lookup = position_of(u, v);
  if (!pu_lookup.has_value()) {
    throw std::invalid_argument("CsrGraph::remove_link: link not present");
  }
  const CsrPos pu = *pu_lookup;
  const CsrPos pv = mirror_[pu];
  const EdgeId e = edge_[pu];
  const EdgeSense sense = initial_senses_[e];
  const bool out_of_u = (sense == EdgeSense::kForward) == (u < v);
  const NodeId in_endpoint = out_of_u ? v : u;

  // Partition coordinates of the two doomed entries (old offsets).
  const auto partition_entry = [this](NodeId owner, NodeId neighbor, bool out_half) {
    const CsrPos begin = out_half ? split_[owner] : offsets_[owner];
    const CsrPos end = out_half ? offsets_[owner + 1] : split_[owner];
    const auto half_begin = part_nbr_.begin() + begin;
    const auto half_end = part_nbr_.begin() + end;
    return begin + static_cast<CsrPos>(std::lower_bound(half_begin, half_end, neighbor) -
                                       half_begin);
  };
  const CsrPos qu = partition_entry(u, v, out_of_u);
  const CsrPos qv = partition_entry(v, u, !out_of_u);

  const CsrPos first = std::min(pu, pv);
  const CsrPos second = std::max(pu, pv);
  const auto map_pos = [first, second](CsrPos p) {
    return p - (p > first ? 1u : 0u) - (p > second ? 1u : 0u);
  };

  // Erase the mirrored pair from the aligned arrays, then remap the
  // surviving stored positions (no survivor references an erased slot:
  // only the pair itself mirrored them).
  double_erase(nbr_, first, second);
  double_erase(edge_, first, second);
  double_erase(mirror_, first, second);
  double_erase(part_nbr_, std::min(qu, qv), std::max(qu, qv));
  double_erase(part_pos_, std::min(qu, qv), std::max(qu, qv));
  for (CsrPos& m : mirror_) m = map_pos(m);
  for (CsrPos& p : part_pos_) p = map_pos(p);

  // Renumber edge ids past the erased one (ranks close up) and drop its
  // sense slot.
  initial_senses_.erase(initial_senses_.begin() + e);
  for (EdgeId& x : edge_) {
    if (x > e) --x;
  }

  for (NodeId w = 0; w < num_nodes_; ++w) {
    const CsrPos in_degree = split_[w] - offsets_[w];
    offsets_[w] -= (w > u ? 1u : 0u) + (w > v ? 1u : 0u);
    split_[w] = offsets_[w] + in_degree - (w == in_endpoint ? 1u : 0u);
  }
  offsets_[num_nodes_] -= 2;
  rebind();  // the erases shrank the arrays; refresh the view extents
}

// ---------------------------------------------------------------------------
// CsrBuilder: streaming two-pass construction
// ---------------------------------------------------------------------------

CsrBuilder::CsrBuilder(std::size_t num_nodes, std::uint64_t position_limit)
    : position_limit_(position_limit) {
  out_.num_nodes_ = num_nodes;
  // Pass 1 counts node u's degree in offsets_[u]; begin_placement() turns
  // the counts into block starts in place.
  out_.offsets_.assign(num_nodes + 1, 0);
}

std::pair<NodeId, NodeId> CsrBuilder::next_edge(NodeId u, NodeId v, std::size_t index) {
  const std::size_t n = out_.num_nodes_;
  if (u >= n || v >= n) {
    throw std::invalid_argument("CsrBuilder: edge endpoint out of range");
  }
  if (u == v) {
    throw std::invalid_argument("CsrBuilder: self loop not allowed");
  }
  const NodeId a = std::min(u, v);
  const NodeId b = std::max(u, v);
  if (index > 0 && !(prev_a_ < a || (prev_a_ == a && prev_b_ < b))) {
    throw std::invalid_argument(
        "CsrBuilder: edges must stream in strictly ascending canonical (min, max) "
        "order (strict ascent also rules out parallel edges)");
  }
  prev_a_ = a;
  prev_b_ = b;
  return {a, b};
}

void CsrBuilder::count_edge(NodeId u, NodeId v) {
  if (placing_) {
    throw std::logic_error("CsrBuilder::count_edge: already placing (pass 2)");
  }
  const auto [a, b] = next_edge(u, v, counted_);
  ++out_.offsets_[a];
  ++out_.offsets_[b];
  ++counted_;
}

void CsrBuilder::begin_placement() {
  if (placing_) {
    throw std::logic_error("CsrBuilder::begin_placement: called twice");
  }
  if (2 * static_cast<std::uint64_t>(counted_) >= position_limit_) {
    throw std::overflow_error(
        "CsrBuilder: adjacency exceeds the 32-bit CSR position space (2*E >= 2^32)");
  }
  const std::size_t n = out_.num_nodes_;
  const std::size_t m = counted_;
  // Exclusive prefix sum in place: offsets_[u] becomes u's block start and
  // doubles as u's placement cursor during pass 2 (finish() restores it).
  CsrPos total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    const CsrPos degree = out_.offsets_[u];
    out_.offsets_[u] = total;
    total += degree;
  }
  out_.offsets_[n] = total;
  out_.nbr_.resize(2 * m);
  out_.edge_.resize(2 * m);
  out_.mirror_.resize(2 * m);
  out_.part_nbr_.resize(2 * m);
  out_.part_pos_.resize(2 * m);
  out_.split_.assign(n, 0);
  out_.initial_senses_.reserve(m);
  placing_ = true;
  placed_ = 0;
}

void CsrBuilder::place_edge(NodeId u, NodeId v, EdgeSense sense) {
  if (!placing_) {
    throw std::logic_error("CsrBuilder::place_edge: begin_placement() not called");
  }
  if (placed_ == counted_) {
    throw std::invalid_argument("CsrBuilder: pass 2 placed more edges than pass 1 counted");
  }
  const auto [a, b] = next_edge(u, v, placed_);
  const EdgeId e = static_cast<EdgeId>(placed_);
  // Both endpoints of the edge land at once, so the mirrors link directly
  // — no per-edge first-position scratch like the batch converter's.
  const CsrPos pa = out_.offsets_[a]++;
  const CsrPos pb = out_.offsets_[b]++;
  out_.nbr_[pa] = b;
  out_.edge_[pa] = e;
  out_.mirror_[pa] = pb;
  out_.nbr_[pb] = a;
  out_.edge_[pb] = e;
  out_.mirror_[pb] = pa;
  out_.initial_senses_.push_back(sense);
  ++placed_;
}

CsrGraph CsrBuilder::finish() {
  if (!placing_) {
    throw std::logic_error("CsrBuilder::finish: begin_placement() not called");
  }
  if (placed_ != counted_) {
    throw std::invalid_argument("CsrBuilder: pass 2 replayed fewer edges than pass 1 counted");
  }
  // Placement advanced every cursor to its block end, i.e. offsets_[u] now
  // holds the final offsets_[u + 1]; shift right to restore block starts.
  const std::size_t n = out_.num_nodes_;
  for (std::size_t u = n >= 1 ? n - 1 : 0; u >= 1; --u) {
    out_.offsets_[u] = out_.offsets_[u - 1];
  }
  if (n > 0) out_.offsets_[0] = 0;
  out_.rebind();
  out_.fill_partition();
  placing_ = false;
  return std::move(out_);
}

}  // namespace lr

#include "graph/csr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lr {

namespace {

constexpr CsrPos kUnseenPos = std::numeric_limits<CsrPos>::max();

std::vector<EdgeSense> all_forward(std::size_t m) {
  return std::vector<EdgeSense>(m, EdgeSense::kForward);
}

}  // namespace

CsrGraph::CsrGraph(const Graph& g) { build(g, all_forward(g.num_edges())); }

CsrGraph::CsrGraph(const Graph& g, std::span<const EdgeSense> initial) {
  if (initial.size() != g.num_edges()) {
    throw std::invalid_argument("CsrGraph: one initial sense per edge required");
  }
  build(g, initial);
}

void CsrGraph::build(const Graph& g, std::span<const EdgeSense> initial) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  num_nodes_ = n;
  initial_senses_.assign(initial.begin(), initial.end());

  offsets_.assign(n + 1, 0);
  nbr_.resize(2 * m);
  edge_.resize(2 * m);
  mirror_.resize(2 * m);
  part_nbr_.resize(2 * m);
  part_pos_.resize(2 * m);
  split_.assign(n, 0);

  // Adjacency: copy Graph's CSR payload (already ascending per node) into
  // the flat id arrays, linking mirror positions through a per-edge slot.
  std::vector<CsrPos> first_pos(m, kUnseenPos);
  CsrPos p = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u] = p;
    for (const Incidence& inc : g.neighbors(u)) {
      nbr_[p] = inc.neighbor;
      edge_[p] = inc.edge;
      if (first_pos[inc.edge] == kUnseenPos) {
        first_pos[inc.edge] = p;
      } else {
        mirror_[p] = first_pos[inc.edge];
        mirror_[first_pos[inc.edge]] = p;
      }
      ++p;
    }
  }
  offsets_[n] = p;

  // Initial in/out partition: in-block first, out-block second, both in
  // ascending neighbor order because the adjacency scan is ascending.
  for (NodeId u = 0; u < n; ++u) {
    const CsrPos begin = offsets_[u];
    const CsrPos end = offsets_[u + 1];
    CsrPos in_cursor = begin;
    for (CsrPos q = begin; q < end; ++q) {
      if (!points_out_of(q, u, initial_senses_)) ++in_cursor;
    }
    split_[u] = in_cursor;
    CsrPos out_cursor = in_cursor;
    in_cursor = begin;
    for (CsrPos q = begin; q < end; ++q) {
      CsrPos& cursor = points_out_of(q, u, initial_senses_) ? out_cursor : in_cursor;
      part_nbr_[cursor] = nbr_[q];
      part_pos_[cursor] = q;
      ++cursor;
    }
  }
}

namespace {

/// Inserts `first_value` / `second_value` at ascending positions
/// `first` / `second` of `values` (old coordinates: the second value lands
/// at `second + 1` after both inserts) — the shared shape of every
/// double-entry array patch below.
template <typename T>
void double_insert(std::vector<T>& values, CsrPos first, T first_value, CsrPos second,
                   T second_value) {
  values.insert(values.begin() + second, second_value);  // later point first:
  values.insert(values.begin() + first, first_value);    // `first` stays valid
}

/// Erases the entries at ascending positions `first` < `second`.
template <typename T>
void double_erase(std::vector<T>& values, CsrPos first, CsrPos second) {
  values.erase(values.begin() + second);
  values.erase(values.begin() + first);
}

}  // namespace

void CsrGraph::insert_link(NodeId u, NodeId v, EdgeSense sense) {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) {
    throw std::invalid_argument("CsrGraph::insert_link: bad endpoints");
  }
  if (position_of(u, v).has_value()) {
    throw std::invalid_argument("CsrGraph::insert_link: link already present");
  }
  const NodeId a = std::min(u, v);
  const NodeId b = std::max(u, v);

  // The new edge's id is its rank in the canonical sorted edge list (the
  // class precondition keeps existing ids equal to their ranks).  Each
  // edge is counted once, at its smaller endpoint's block.
  EdgeId e_new = 0;
  for (NodeId w = 0; w < a; ++w) {
    for (const NodeId x : neighbors(w)) {
      if (x > w) ++e_new;
    }
  }
  for (const NodeId x : neighbors(a)) {
    if (x > a && x < b) ++e_new;
  }
  for (EdgeId& e : edge_) {
    if (e >= e_new) ++e;
  }
  initial_senses_.insert(initial_senses_.begin() + e_new, sense);

  // Adjacency insertion points in old position coordinates.  When they
  // coincide (the blocks of u and v abut with nothing between), the entry
  // belonging to the earlier block must land first.
  const auto insert_point = [this](NodeId owner, NodeId neighbor) {
    const auto nbrs = neighbors(owner);
    return offsets_[owner] +
           static_cast<CsrPos>(std::lower_bound(nbrs.begin(), nbrs.end(), neighbor) -
                               nbrs.begin());
  };
  const CsrPos iu = insert_point(u, v);
  const CsrPos iv = insert_point(v, u);
  const bool u_entry_first = iu < iv || (iu == iv && u < v);
  const CsrPos first = u_entry_first ? iu : iv;
  const CsrPos second = u_entry_first ? iv : iu;
  const auto map_pos = [first, second](CsrPos p) {
    return p + (p >= first ? 1u : 0u) + (p >= second ? 1u : 0u);
  };
  const CsrPos new_pu = u_entry_first ? first : second + 1;  // v inside u's block
  const CsrPos new_pv = u_entry_first ? second + 1 : first;  // u inside v's block

  // Partition insertion points, computed against the still-unshifted
  // offsets: the new neighbor joins the in- or out-half of each block
  // depending on which way the new edge points, keeping the half ascending.
  const bool out_of_u = (sense == EdgeSense::kForward) == (u == a);
  const NodeId in_endpoint = out_of_u ? v : u;
  const auto partition_point = [this](NodeId owner, NodeId neighbor, bool out_half) {
    const CsrPos begin = out_half ? split_[owner] : offsets_[owner];
    const CsrPos end = out_half ? offsets_[owner + 1] : split_[owner];
    const auto half_begin = part_nbr_.begin() + begin;
    const auto half_end = part_nbr_.begin() + end;
    return begin + static_cast<CsrPos>(std::lower_bound(half_begin, half_end, neighbor) -
                                       half_begin);
  };
  const CsrPos ju = partition_point(u, v, out_of_u);
  const CsrPos jv = partition_point(v, u, !out_of_u);
  const bool u_part_first = ju < jv || (ju == jv && u < v);
  const CsrPos part_first = u_part_first ? ju : jv;
  const CsrPos part_second = u_part_first ? jv : ju;

  // Patch the aligned adjacency arrays: remap stored positions, then
  // double-insert the two new entries (which mirror each other).
  for (CsrPos& m : mirror_) m = map_pos(m);
  for (CsrPos& p : part_pos_) p = map_pos(p);
  double_insert(nbr_, first, u_entry_first ? v : u, second, u_entry_first ? u : v);
  double_insert(edge_, first, e_new, second, e_new);
  double_insert(mirror_, first, second + 1, second, first);
  double_insert(part_nbr_, part_first, u_part_first ? v : u, part_second,
                u_part_first ? u : v);
  double_insert(part_pos_, part_first, u_part_first ? new_pu : new_pv, part_second,
                u_part_first ? new_pv : new_pu);

  // Offsets and partition splits in one pass: block starts after u / v
  // shift, and the receiving endpoint's in-half grows by one.
  for (NodeId w = 0; w < num_nodes_; ++w) {
    const CsrPos in_degree = split_[w] - offsets_[w];
    offsets_[w] += (w > u ? 1u : 0u) + (w > v ? 1u : 0u);
    split_[w] = offsets_[w] + in_degree + (w == in_endpoint ? 1u : 0u);
  }
  offsets_[num_nodes_] += 2;
}

void CsrGraph::remove_link(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) {
    throw std::invalid_argument("CsrGraph::remove_link: bad endpoints");
  }
  const auto pu_lookup = position_of(u, v);
  if (!pu_lookup.has_value()) {
    throw std::invalid_argument("CsrGraph::remove_link: link not present");
  }
  const CsrPos pu = *pu_lookup;
  const CsrPos pv = mirror_[pu];
  const EdgeId e = edge_[pu];
  const EdgeSense sense = initial_senses_[e];
  const bool out_of_u = (sense == EdgeSense::kForward) == (u < v);
  const NodeId in_endpoint = out_of_u ? v : u;

  // Partition coordinates of the two doomed entries (old offsets).
  const auto partition_entry = [this](NodeId owner, NodeId neighbor, bool out_half) {
    const CsrPos begin = out_half ? split_[owner] : offsets_[owner];
    const CsrPos end = out_half ? offsets_[owner + 1] : split_[owner];
    const auto half_begin = part_nbr_.begin() + begin;
    const auto half_end = part_nbr_.begin() + end;
    return begin + static_cast<CsrPos>(std::lower_bound(half_begin, half_end, neighbor) -
                                       half_begin);
  };
  const CsrPos qu = partition_entry(u, v, out_of_u);
  const CsrPos qv = partition_entry(v, u, !out_of_u);

  const CsrPos first = std::min(pu, pv);
  const CsrPos second = std::max(pu, pv);
  const auto map_pos = [first, second](CsrPos p) {
    return p - (p > first ? 1u : 0u) - (p > second ? 1u : 0u);
  };

  // Erase the mirrored pair from the aligned arrays, then remap the
  // surviving stored positions (no survivor references an erased slot:
  // only the pair itself mirrored them).
  double_erase(nbr_, first, second);
  double_erase(edge_, first, second);
  double_erase(mirror_, first, second);
  double_erase(part_nbr_, std::min(qu, qv), std::max(qu, qv));
  double_erase(part_pos_, std::min(qu, qv), std::max(qu, qv));
  for (CsrPos& m : mirror_) m = map_pos(m);
  for (CsrPos& p : part_pos_) p = map_pos(p);

  // Renumber edge ids past the erased one (ranks close up) and drop its
  // sense slot.
  initial_senses_.erase(initial_senses_.begin() + e);
  for (EdgeId& x : edge_) {
    if (x > e) --x;
  }

  for (NodeId w = 0; w < num_nodes_; ++w) {
    const CsrPos in_degree = split_[w] - offsets_[w];
    offsets_[w] -= (w > u ? 1u : 0u) + (w > v ? 1u : 0u);
    split_[w] = offsets_[w] + in_degree - (w == in_endpoint ? 1u : 0u);
  }
  offsets_[num_nodes_] -= 2;
}

}  // namespace lr

#include "graph/csr.hpp"

#include <limits>
#include <stdexcept>

namespace lr {

namespace {

constexpr CsrPos kUnseenPos = std::numeric_limits<CsrPos>::max();

std::vector<EdgeSense> all_forward(std::size_t m) {
  return std::vector<EdgeSense>(m, EdgeSense::kForward);
}

}  // namespace

CsrGraph::CsrGraph(const Graph& g) { build(g, all_forward(g.num_edges())); }

CsrGraph::CsrGraph(const Graph& g, std::span<const EdgeSense> initial) {
  if (initial.size() != g.num_edges()) {
    throw std::invalid_argument("CsrGraph: one initial sense per edge required");
  }
  build(g, initial);
}

void CsrGraph::build(const Graph& g, std::span<const EdgeSense> initial) {
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  num_nodes_ = n;
  initial_senses_.assign(initial.begin(), initial.end());

  offsets_.assign(n + 1, 0);
  nbr_.resize(2 * m);
  edge_.resize(2 * m);
  mirror_.resize(2 * m);
  part_nbr_.resize(2 * m);
  part_pos_.resize(2 * m);
  split_.assign(n, 0);

  // Adjacency: copy Graph's CSR payload (already ascending per node) into
  // the flat id arrays, linking mirror positions through a per-edge slot.
  std::vector<CsrPos> first_pos(m, kUnseenPos);
  CsrPos p = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u] = p;
    for (const Incidence& inc : g.neighbors(u)) {
      nbr_[p] = inc.neighbor;
      edge_[p] = inc.edge;
      if (first_pos[inc.edge] == kUnseenPos) {
        first_pos[inc.edge] = p;
      } else {
        mirror_[p] = first_pos[inc.edge];
        mirror_[first_pos[inc.edge]] = p;
      }
      ++p;
    }
  }
  offsets_[n] = p;

  // Initial in/out partition: in-block first, out-block second, both in
  // ascending neighbor order because the adjacency scan is ascending.
  for (NodeId u = 0; u < n; ++u) {
    const CsrPos begin = offsets_[u];
    const CsrPos end = offsets_[u + 1];
    CsrPos in_cursor = begin;
    for (CsrPos q = begin; q < end; ++q) {
      if (!points_out_of(q, u, initial_senses_)) ++in_cursor;
    }
    split_[u] = in_cursor;
    CsrPos out_cursor = in_cursor;
    in_cursor = begin;
    for (CsrPos q = begin; q < end; ++q) {
      CsrPos& cursor = points_out_of(q, u, initial_senses_) ? out_cursor : in_cursor;
      part_nbr_[cursor] = nbr_[q];
      part_pos_[cursor] = q;
      ++cursor;
    }
  }
}

}  // namespace lr

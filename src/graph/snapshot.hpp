#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/csr.hpp"
#include "graph/generators.hpp"

/// \file snapshot.hpp
/// mmap-backed frozen instance snapshots — the persistent form of a
/// `FrozenInstance` (runner layer) and the disk half of the CSR storage
/// modes described in graph/csr.hpp.
///
/// A snapshot file is *flat*: one fixed-size header followed by the eight
/// CSR arrays plus the instance metadata (destination, name), each laid
/// out exactly as it lives in memory and padded to 8-byte alignment.
/// Loading is therefore `mmap` + pointer arithmetic + `CsrGraph::borrow`
/// — zero fixup, zero per-element work, and the page cache shares the
/// bytes across every process mapping the same file (the multi-process
/// sweep shards of runner/process_runner.hpp).
///
/// Integrity over portability: the header carries a magic, a version, the
/// array extents, and an FNV-1a checksum over the payload, and `load`
/// rejects any mismatch loudly (wrong magic, wrong version, truncation,
/// extent/size disagreement, checksum failure).  The byte order is the
/// writing host's — a snapshot is a *cache artifact* regenerable from
/// (topology, size, seed), not an interchange format, so cross-endian
/// portability is explicitly out of scope (the version field guards
/// against silently misreading a foreign file as long as sizes disagree,
/// and the checksum catches the rest).
///
/// Write path: `save_snapshot` streams the sections through the checksum
/// into `path + ".tmp.<pid>"` and renames into place, so concurrent
/// writers (two sweep shards racing to warm the same cache entry) and
/// crashes mid-write leave either the old file or a complete new one —
/// never a torn snapshot.

namespace lr {

/// Snapshot file format version; bumped on any layout change.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Writes `instance` + its frozen CSR form to `path` (atomically, via a
/// same-directory temp file + rename).  Throws std::runtime_error on I/O
/// failure and std::invalid_argument when `csr` is inconsistent with
/// `instance` (node/edge counts or senses disagree).
void save_snapshot(const std::string& path, const Instance& instance, const CsrGraph& csr);

/// One loaded snapshot: the mapping plus a borrowed `CsrGraph` bound over
/// it.  Move-only; the mapping lives exactly as long as this object, and
/// every span handed out (via `csr()`) dies with it — holders that need
/// the CSR data past the Snapshot's lifetime must `materialize()` their
/// copy (runner code instead keeps the Snapshot alive alongside the
/// borrowed graph).
class Snapshot {
 public:
  /// Maps `path` read-only and validates it: magic, version, header/array
  /// extent consistency against the file size, and (unless
  /// `verify_checksum` is false — a bench knob for isolating checksum
  /// cost, not a production switch) the FNV-1a payload checksum.  Throws
  /// std::runtime_error naming the failure on any rejection.
  static Snapshot load(const std::string& path, bool verify_checksum = true);

  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  /// Unmaps the file.
  ~Snapshot();

  /// The borrowed CSR snapshot over the mapping (see csr.hpp storage
  /// modes).  Valid while this Snapshot lives.
  const CsrGraph& csr() const noexcept { return csr_; }

  /// The instance's destination node D.
  NodeId destination() const noexcept { return destination_; }

  /// The instance's human-readable workload label.
  const std::string& name() const noexcept { return name_; }

  /// Node count of the stored graph.
  std::size_t num_nodes() const noexcept { return csr_.num_nodes(); }

  /// Edge count of the stored graph.
  std::size_t num_edges() const noexcept { return csr_.num_edges(); }

  /// Size of the mapped file in bytes.
  std::size_t file_bytes() const noexcept { return map_bytes_; }

  /// Reconstructs the full `Instance` (Graph front-end + senses +
  /// metadata) from the mapping — the one O(m) step of a reload, via
  /// `Graph::from_trusted_parts` with no validation, sorting, or hashing.
  /// The result owns its memory and outlives this Snapshot.
  Instance thaw_instance() const;

 private:
  Snapshot() = default;

  void* map_ = nullptr;        ///< mmap base (nullptr once moved-from)
  std::size_t map_bytes_ = 0;  ///< mapping length
  CsrGraph csr_;               ///< borrowed over the mapping
  NodeId destination_ = 0;
  std::string name_;
};

}  // namespace lr

#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace lr {

Graph::Graph(std::size_t num_nodes, std::vector<std::pair<NodeId, NodeId>> edges) {
  // Canonicalize and validate endpoints.  Duplicate detection is a sort
  // over a scratch copy rather than a std::set: identical semantics, but
  // O(m log m) cache-friendly work with two allocations instead of one
  // red-black node per edge — the difference between milliseconds and
  // seconds at million-node scale.
  if (2 * static_cast<std::uint64_t>(edges.size()) >= kCsrPosLimit) {
    throw std::overflow_error(
        "Graph: adjacency exceeds the 32-bit CSR position space (2*E >= 2^32)");
  }
  endpoints_.reserve(edges.size());
  for (auto [a, b] : edges) {
    if (a >= num_nodes || b >= num_nodes) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (a == b) {
      throw std::invalid_argument("Graph: self loop not allowed");
    }
    if (a > b) std::swap(a, b);
    endpoints_.emplace_back(a, b);
  }
  std::vector<std::pair<NodeId, NodeId>> sorted(endpoints_);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("Graph: parallel edge not allowed");
  }

  // Build CSR adjacency with neighbors sorted ascending per node.
  adjacency_offsets_.assign(num_nodes + 1, 0);
  for (const auto& [a, b] : endpoints_) {
    ++adjacency_offsets_[a + 1];
    ++adjacency_offsets_[b + 1];
  }
  for (std::size_t i = 1; i <= num_nodes; ++i) {
    adjacency_offsets_[i] += adjacency_offsets_[i - 1];
  }
  adjacency_.resize(endpoints_.size() * 2);
  std::vector<CsrPos> cursor(adjacency_offsets_.begin(), adjacency_offsets_.end() - 1);
  for (EdgeId e = 0; e < endpoints_.size(); ++e) {
    const auto [a, b] = endpoints_[e];
    adjacency_[cursor[a]++] = Incidence{b, e};
    adjacency_[cursor[b]++] = Incidence{a, e};
  }
  for (NodeId u = 0; u < num_nodes; ++u) {
    auto begin = adjacency_.begin() + static_cast<std::ptrdiff_t>(adjacency_offsets_[u]);
    auto end = adjacency_.begin() + static_cast<std::ptrdiff_t>(adjacency_offsets_[u + 1]);
    std::sort(begin, end, [](const Incidence& x, const Incidence& y) {
      return x.neighbor < y.neighbor;
    });
  }
}

Graph Graph::from_trusted_parts(TrustedParts parts) {
  Graph g;
  g.endpoints_ = std::move(parts.endpoints);
  g.adjacency_ = std::move(parts.adjacency);
  g.adjacency_offsets_ = std::move(parts.offsets);
  return g;
}

EdgeId Graph::edge_between(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v,
                             [](const Incidence& inc, NodeId target) {
                               return inc.neighbor < target;
                             });
  if (it != nbrs.end() && it->neighbor == v) return it->edge;
  return kNoEdge;
}

bool Graph::is_connected() const {
  const std::size_t n = num_nodes();
  if (n <= 1) return true;
  std::vector<bool> visited(n, false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  visited[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Incidence& inc : neighbors(u)) {
      if (!visited[inc.neighbor]) {
        visited[inc.neighbor] = true;
        ++reached;
        frontier.push(inc.neighbor);
      }
    }
  }
  return reached == n;
}

std::string Graph::describe() const {
  return "Graph(n=" + std::to_string(num_nodes()) + ", m=" + std::to_string(num_edges()) + ")";
}

}  // namespace lr

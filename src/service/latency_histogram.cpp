#include "service/latency_histogram.hpp"

#include <algorithm>
#include <cmath>

namespace lr {

void LatencyHistogram::record(std::uint64_t value) noexcept {
  ++counts_[bucket_index(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t index = 0; index < kBuckets; ++index) counts_[index] += other.counts_[index];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t index = 0; index < kBuckets; ++index) {
    cumulative += counts_[index];
    if (cumulative >= rank) return bucket_lower_bound(index);
  }
  return max_;  // unreachable: cumulative reaches count_ >= rank
}

std::uint64_t LatencyHistogram::fingerprint() const noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  for (const std::uint64_t bucket : counts_) mix(bucket);
  mix(count_);
  mix(sum_);
  mix(min_);
  mix(max_);
  return hash;
}

}  // namespace lr

#include "service/workload.hpp"

#include <stdexcept>

namespace lr {

const char* service_workload_token(ServiceWorkload workload) {
  switch (workload) {
    case ServiceWorkload::kRoute:
      return "route";
    case ServiceWorkload::kLock:
      return "lock";
    case ServiceWorkload::kLeader:
      return "leader";
    case ServiceWorkload::kMixed:
      return "mixed";
  }
  return "?";
}

ServiceWorkload parse_service_workload(const std::string& token) {
  for (const ServiceWorkload workload :
       {ServiceWorkload::kRoute, ServiceWorkload::kLock, ServiceWorkload::kLeader,
        ServiceWorkload::kMixed}) {
    if (token == service_workload_token(workload)) return workload;
  }
  throw std::invalid_argument("unknown service_workload '" + token +
                              "' (known: route, lock, leader, mixed)");
}

}  // namespace lr

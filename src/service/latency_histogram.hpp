#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

/// \file latency_histogram.hpp
/// A log-bucketed (HDR-style) latency histogram with an *exact*,
/// order-independent merge — the measurement primitive of the service
/// layer (service_harness.hpp, docs/ARCHITECTURE.md §"Service layer").
///
/// Buckets are fixed at construction: 16 sub-buckets per power-of-two
/// octave (values below 16 get one bucket each), covering the full
/// uint64 range in 976 buckets of ~6% relative width.  Recording is one
/// bucket increment plus count/sum/min/max updates; merge() is an
/// element-wise sum of two fixed arrays plus the same aggregate folds.
/// Every operation is integer arithmetic over a fixed layout, so merge
/// is exactly commutative and associative: however a sample stream is
/// split across workers and in whatever order the pieces are merged
/// back, the resulting histogram is byte-identical to recording the
/// stream serially.  That identity — not approximate equality — is what
/// lets the service harness promise byte-identical latency reports at
/// every worker count (tests/latency_histogram_test.cpp pins it with a
/// randomized split/order property test).
///
/// quantile(q) returns the lower bound of the bucket containing the
/// rank-ceil(q*count) sample, so an estimate is always within one
/// bucket of the exact sorted-sample quantile (also pinned by test).

namespace lr {

/// The log-bucketed latency histogram; see the file comment.
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^4 linear sub-buckets per octave.
  static constexpr std::size_t kSubBits = 4;
  /// Values below this get one exact bucket each (the linear prefix).
  static constexpr std::uint64_t kLinearLimit = 1ull << kSubBits;
  /// Total bucket count covering all of uint64 (16 linear + 60 octaves).
  static constexpr std::size_t kBuckets = kLinearLimit + (64 - kSubBits) * kLinearLimit;

  /// The bucket index of `value` (total order, monotone in value).
  static constexpr std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kLinearLimit) return static_cast<std::size_t>(value);
    const unsigned exponent = 63u - static_cast<unsigned>(std::countl_zero(value));
    const std::uint64_t sub = (value >> (exponent - kSubBits)) & (kLinearLimit - 1);
    return kLinearLimit + (exponent - kSubBits) * kLinearLimit + static_cast<std::size_t>(sub);
  }

  /// The smallest value mapping to bucket `index` (bucket_index's lower
  /// inverse): the value quantile() reports for a bucket.
  static constexpr std::uint64_t bucket_lower_bound(std::size_t index) noexcept {
    if (index < kLinearLimit) return index;
    const unsigned exponent =
        static_cast<unsigned>(kSubBits + (index - kLinearLimit) / kLinearLimit);
    const std::uint64_t sub = (index - kLinearLimit) % kLinearLimit;
    return (kLinearLimit + sub) << (exponent - kSubBits);
  }

  /// Records one sample.
  void record(std::uint64_t value) noexcept;

  /// Folds `other` into this histogram.  Exactly commutative and
  /// associative (element-wise integer sums), hence order- and
  /// split-independent; see the file comment.
  void merge(const LatencyHistogram& other) noexcept;

  /// Recorded sample count.
  std::uint64_t count() const noexcept { return count_; }
  /// Sum of all recorded samples.
  std::uint64_t sum() const noexcept { return sum_; }
  /// Smallest recorded sample (0 when empty).
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  /// Largest recorded sample (0 when empty).
  std::uint64_t max() const noexcept { return max_; }
  /// Mean of the recorded samples (0.0 when empty).
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// The value at quantile `q` in [0, 1]: the lower bound of the bucket
  /// holding the sample of rank ceil(q * count) (rank clamped to
  /// [1, count]).  Returns 0 when empty.  Within one bucket of the exact
  /// sorted-sample quantile by construction.
  std::uint64_t quantile(double q) const noexcept;

  /// FNV-1a over the bucket array and aggregates: the identity the
  /// worker-count-invariance checks compare.  Equal histograms hash
  /// equal; the service layer treats a fingerprint match across
  /// configurations as "byte-identical report".
  std::uint64_t fingerprint() const noexcept;

  /// Exact structural equality (buckets and aggregates).
  bool operator==(const LatencyHistogram&) const = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace lr

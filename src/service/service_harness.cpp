#include "service/service_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "runner/scenario.hpp"

namespace lr {

namespace {

// Domain tags keep the harness's derived RNG streams (per-client draws,
// churn flips) independent of each other and of the sweep layer's
// instance/scheduler/network streams (runner/scenario.cpp).
constexpr std::uint64_t kClientDomain = 0x5e71c3c11e47ULL;
constexpr std::uint64_t kChurnDomain = 0xc4321b11459ULL;

std::string fmt_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

std::string u64(std::uint64_t value) { return std::to_string(value); }

}  // namespace

const char* request_kind_token(RequestKind kind) {
  switch (kind) {
    case RequestKind::kRoute:
      return "route";
    case RequestKind::kLock:
      return "lock";
    case RequestKind::kLeader:
      return "leader";
  }
  return "?";
}

const char* request_status_token(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kPartitioned:
      return "partitioned";
    case RequestStatus::kNoLeader:
      return "no-leader";
  }
  return "?";
}

std::uint64_t ServiceReport::total_issued() const noexcept {
  std::uint64_t total = 0;
  for (const ServiceKindStats& kind : kinds) total += kind.issued;
  return total;
}

std::uint64_t ServiceReport::total_completed() const noexcept {
  std::uint64_t total = 0;
  for (const ServiceKindStats& kind : kinds) total += kind.completed;
  return total;
}

std::uint64_t ServiceReport::total_failed() const noexcept {
  std::uint64_t total = 0;
  for (const ServiceKindStats& kind : kinds) total += kind.failed;
  return total;
}

double ServiceReport::requests_per_sec() const noexcept {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(total_issued()) / wall_seconds;
}

std::uint64_t ServiceReport::fingerprint() const noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  for (const ServiceKindStats& kind : kinds) {
    mix(kind.histogram.fingerprint());
    mix(kind.issued);
    mix(kind.completed);
    mix(kind.failed);
    mix(kind.hops);
  }
  mix(churn_events);
  mix(reversal_steps);
  return hash;
}

Table ServiceReport::latency_table() const {
  Table table;
  table.columns = {"kind", "issued", "completed", "failed", "p50",  "p99",
                   "p999", "mean",   "max",       "hops",   "fingerprint"};
  const auto add = [&table](const char* label, const ServiceKindStats& stats) {
    table.add_row({label, u64(stats.issued), u64(stats.completed), u64(stats.failed),
                   u64(stats.histogram.quantile(0.50)), u64(stats.histogram.quantile(0.99)),
                   u64(stats.histogram.quantile(0.999)), fmt_double(stats.histogram.mean()),
                   u64(stats.histogram.max()), u64(stats.hops),
                   u64(stats.histogram.fingerprint())});
  };
  ServiceKindStats all;
  for (std::size_t kind = 0; kind < kRequestKinds; ++kind) {
    add(request_kind_token(static_cast<RequestKind>(kind)), kinds[kind]);
    all.histogram.merge(kinds[kind].histogram);
    all.issued += kinds[kind].issued;
    all.completed += kinds[kind].completed;
    all.failed += kinds[kind].failed;
    all.hops += kinds[kind].hops;
  }
  add("all", all);
  return table;
}

/// One drawn-but-unprocessed request of the current tick's batch.
struct ServiceHarness::PendingRequest {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kRoute;
  NodeId source = 0;
  std::uint64_t think = 1;
  std::uint32_t client = 0;
  // Filled by the processing phase (lock serially, reads in parallel).
  std::uint64_t latency = 1;
  std::uint64_t hops = 0;
  RequestStatus status = RequestStatus::kOk;
};

/// Private measurement block of one parallel read-phase worker; merged
/// into the report with the histogram's exact merge.
struct ServiceHarness::WorkerAccumulator {
  ServiceKindStats kinds[kRequestKinds];
};

ServiceHarness::ServiceHarness(const Graph& topology, NodeId destination, ServiceOptions options)
    : topology_(topology),
      destination_(destination),
      options_(options),
      tora_(topology, destination),
      mutex_(topology, destination),
      leader_(topology),
      live_links_(topology.edges()),
      churn_rng_(splitmix64(options.seed ^ kChurnDomain)) {
  if (topology.num_nodes() == 0) {
    throw std::invalid_argument("ServiceHarness: topology has no nodes");
  }
  if (options_.clients == 0) {
    throw std::invalid_argument("ServiceHarness: clients must be >= 1");
  }
}

void ServiceHarness::apply_link_event(const LinkEvent& event) {
  if (event.up) {
    tora_.link_up(event.u, event.v);
    mutex_.link_up(event.u, event.v);
    leader_.link_up(event.u, event.v);
  } else {
    tora_.link_down(event.u, event.v);
    mutex_.link_down(event.u, event.v);
    leader_.link_down(event.u, event.v);
  }
  ++churn_events_;
}

void ServiceHarness::apply_churn_until(SimTime now) {
  if (options_.churn_script != nullptr) {
    const auto& script = *options_.churn_script;
    while (script_cursor_ < script.size() && script[script_cursor_].time <= now) {
      apply_link_event(script[script_cursor_].event);
      ++script_cursor_;
    }
    return;
  }
  if (options_.churn_interval == 0) return;
  while ((random_churn_applied_ + 1) * options_.churn_interval <= now) {
    ++random_churn_applied_;
    const bool can_heal = !down_links_.empty();
    const bool can_break = !live_links_.empty();
    if (!can_heal && !can_break) continue;
    const bool heal = can_heal && (!can_break || (churn_rng_() & 1) != 0);
    auto& from = heal ? down_links_ : live_links_;
    auto& to = heal ? live_links_ : down_links_;
    const std::size_t index = static_cast<std::size_t>(churn_rng_() % from.size());
    const auto link = from[index];
    from[index] = from.back();  // swap-pop: O(1), order is RNG-determined anyway
    from.pop_back();
    to.push_back(link);
    apply_link_event({link.first, link.second, heal});
  }
}

ServiceReport ServiceHarness::run() {
  ServiceReport report;
  const std::size_t nodes = topology_.num_nodes();

  // Resolve the parallel read phase's worker pool: a borrowed pool wins,
  // `workers != 1` without one spawns a short-lived local pool, and
  // workers == 1 stays serial (no pool at all).  Reports are identical
  // in every case — sharding only moves pure reads between threads.
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = options_.pool;
  if (pool == nullptr && options_.workers != 1) pool = &local_pool.emplace(options_.workers);
  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  std::vector<WorkerAccumulator> accumulators(workers);

  // Per-client RNG streams: a client's request sequence depends only on
  // (seed, client index), never on interleaving, which is half of the
  // determinism story (the other half is the serial completion order).
  std::vector<std::mt19937_64> client_rng;
  client_rng.reserve(options_.clients);
  for (std::size_t client = 0; client < options_.clients; ++client) {
    client_rng.emplace_back(
        splitmix64(splitmix64(options_.seed ^ kClientDomain) ^ (client + 1)));
  }

  TimeIndex index(options_.scheduler);
  std::uint64_t seq = 0;
  for (std::size_t client = 0; client < options_.clients; ++client) {
    index.push(1, seq++, static_cast<std::uint32_t>(client));
  }

  std::uint64_t next_id = 0;
  std::vector<PendingRequest> pending;
  std::vector<std::size_t> reads;  // pending indices of the parallel phase

  const auto start = std::chrono::steady_clock::now();
  TimeIndexEntry entry;
  SimTime now = 0;
  while (index.peek_min_time(now) && now <= options_.duration) {
    // Drain the whole tick: entries pop in (time, seq) order, so the
    // batch order is the issue order regardless of backend.
    pending.clear();
    SimTime peek = 0;
    while (index.peek_min_time(peek) && peek == now) {
      index.pop_min(entry);
      PendingRequest request;
      request.client = entry.slot;
      pending.push_back(request);
    }

    // Phase 1 — churn due at or before this tick, applied serially
    // through the incremental patch path of all three services.
    apply_churn_until(now);

    // Phase 2 — draw this tick's requests serially, one per woken
    // client, in batch (= seq) order.
    for (PendingRequest& request : pending) {
      std::mt19937_64& rng = client_rng[request.client];
      switch (options_.workload) {
        case ServiceWorkload::kRoute:
          request.kind = RequestKind::kRoute;
          break;
        case ServiceWorkload::kLock:
          request.kind = RequestKind::kLock;
          break;
        case ServiceWorkload::kLeader:
          request.kind = RequestKind::kLeader;
          break;
        case ServiceWorkload::kMixed: {
          const std::uint64_t draw = rng() % 4;
          request.kind = draw < 2 ? RequestKind::kRoute
                                  : (draw == 2 ? RequestKind::kLock : RequestKind::kLeader);
          break;
        }
      }
      request.source = static_cast<NodeId>(rng() % nodes);
      request.think = 1 + rng() % 8;
      request.id = next_id++;
    }

    // Phase 3 — lock cycles, serially in issue order (they mutate the
    // mutex DAG: request routes to the holder, release re-targets it).
    reads.clear();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      PendingRequest& request = pending[i];
      if (request.kind != RequestKind::kLock) {
        reads.push_back(i);
        continue;
      }
      const NodeId source = request.source;
      if (source == mutex_.holder()) {
        request.latency = 1;  // already holds the token
      } else if (!mutex_.dag().route(source)) {
        request.status = RequestStatus::kPartitioned;
        request.latency = 1;
      } else {
        const std::uint64_t before = mutex_.stats().total_reversals;
        request.hops = mutex_.request(source);
        mutex_.release();  // grants to `source`: the queue held only it
        const std::uint64_t reversals = mutex_.stats().total_reversals - before;
        request.latency = 1 + request.hops + reversals;
      }
      ServiceKindStats& stats = accumulators[0].kinds[static_cast<std::size_t>(request.kind)];
      ++stats.issued;
      if (request.status == RequestStatus::kOk) {
        ++stats.completed;
        stats.hops += request.hops;
        stats.histogram.record(request.latency);
      } else {
        ++stats.failed;
      }
    }

    // Phase 4 — route queries and leader lookups: pure reads over the
    // tora / leader DAGs, sharded contiguously across the pool.  Freshen
    // both snapshots serially first so the parallel phase never races an
    // ensure_snapshot rebuild.
    (void)tora_.dag().neighbors(0);
    (void)leader_.dag().neighbors(0);
    const auto process_read = [this](PendingRequest& request) {
      const NodeId source = request.source;
      if (request.kind == RequestKind::kRoute) {
        if (source == tora_.destination()) {
          request.latency = 1;
          return;
        }
        const auto path = tora_.dag().route(source);
        if (!path) {
          request.status = RequestStatus::kPartitioned;
          request.latency = 1;
          return;
        }
        request.hops = path->size() - 1;
        request.latency = 1 + request.hops;
        return;
      }
      const auto elected = leader_.leader();
      if (!elected) {
        request.status = RequestStatus::kNoLeader;
        request.latency = 1;
        return;
      }
      if (source == *elected) {
        request.latency = 1;
        return;
      }
      const auto path = leader_.dag().route(source);
      if (!path) {
        request.status = RequestStatus::kPartitioned;
        request.latency = 1;
        return;
      }
      request.hops = path->size() - 1;
      request.latency = 1 + request.hops;
    };
    const auto account = [&pending, &reads, &accumulators](std::size_t worker, std::size_t begin,
                                                           std::size_t end) {
      for (std::size_t r = begin; r < end; ++r) {
        PendingRequest& request = pending[reads[r]];
        ServiceKindStats& stats =
            accumulators[worker].kinds[static_cast<std::size_t>(request.kind)];
        ++stats.issued;
        if (request.status == RequestStatus::kOk) {
          ++stats.completed;
          stats.hops += request.hops;
          stats.histogram.record(request.latency);
        } else {
          ++stats.failed;
        }
      }
    };
    if (pool != nullptr && reads.size() > 1) {
      pool->run([&pending, &reads, &process_read, &account, workers](std::size_t worker) {
        const std::size_t begin = reads.size() * worker / workers;
        const std::size_t end = reads.size() * (worker + 1) / workers;
        for (std::size_t r = begin; r < end; ++r) process_read(pending[reads[r]]);
        account(worker, begin, end);
      });
    } else {
      for (const std::size_t i : reads) process_read(pending[i]);
      account(0, 0, reads.size());
    }

    // Phase 5 — completion, serially in issue order: trace append and
    // the next closed-loop wake (latency then think time).
    for (const PendingRequest& request : pending) {
      if (options_.keep_trace) {
        report.trace.push_back({request.id, request.kind, request.source, now, request.latency,
                                request.hops, request.status});
      }
      const SimTime next = now + request.latency + request.think;
      if (next <= options_.duration) index.push(next, seq++, request.client);
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(stop - start).count();

  // Exact, order-independent merge of the per-worker measurement blocks
  // (ascending worker order by convention; any order yields identical
  // bytes — tests/latency_histogram_test.cpp proves it).
  for (const WorkerAccumulator& accumulator : accumulators) {
    for (std::size_t kind = 0; kind < kRequestKinds; ++kind) {
      report.kinds[kind].histogram.merge(accumulator.kinds[kind].histogram);
      report.kinds[kind].issued += accumulator.kinds[kind].issued;
      report.kinds[kind].completed += accumulator.kinds[kind].completed;
      report.kinds[kind].failed += accumulator.kinds[kind].failed;
      report.kinds[kind].hops += accumulator.kinds[kind].hops;
    }
  }
  report.churn_events = churn_events_;
  report.reversal_steps = tora_.dag().total_reversals() + mutex_.dag().total_reversals() +
                          leader_.dag().total_reversals();
  report.snapshot_patches = tora_.dag().snapshot_patches() + mutex_.dag().snapshot_patches() +
                            leader_.dag().snapshot_patches();
  report.snapshot_rebuilds = tora_.dag().snapshot_rebuilds() + mutex_.dag().snapshot_rebuilds() +
                             leader_.dag().snapshot_rebuilds();
  return report;
}

}  // namespace lr

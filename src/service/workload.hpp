#pragma once

#include <cstdint>
#include <string>

/// \file workload.hpp
/// The service-workload vocabulary shared by the sweep layer and the
/// service harness.  A leaf header (like sim/time_index.hpp's scheduler
/// tokens) so runner/scenario.hpp can name the `service_workload` sweep
/// scalar without pulling the whole service layer into its include
/// graph.

namespace lr {

/// Which client-request mix a service-harness run drives
/// (service/service_harness.hpp).
enum class ServiceWorkload : std::uint8_t {
  kRoute,   ///< route queries only (ToraRouter's DAG)
  kLock,    ///< lock acquire/release cycles only (LinkReversalMutex)
  kLeader,  ///< leader lookups only (LeaderElectionService)
  kMixed,   ///< 50% route, 25% lock, 25% leader per client draw
};

/// Spec-file / CLI token of a workload ("route", "lock", "leader",
/// "mixed").
const char* service_workload_token(ServiceWorkload workload);

/// Parses a workload token; throws std::invalid_argument when unknown.
ServiceWorkload parse_service_workload(const std::string& token);

}  // namespace lr

#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "routing/dynamic_heights.hpp"
#include "routing/leader_election.hpp"
#include "routing/mutex.hpp"
#include "routing/tora.hpp"
#include "runner/thread_pool.hpp"
#include "service/latency_histogram.hpp"
#include "service/workload.hpp"
#include "sim/time_index.hpp"
#include "trace/report.hpp"

/// \file service_harness.hpp
/// The request-serving front end (docs/ARCHITECTURE.md §"Service
/// layer"): reframes the paper's three applications — routing, mutual
/// exclusion, leader election — as one live *service* under client
/// load, measured the way a client experiences it (per-request latency
/// percentiles and sustained throughput) instead of time-to-quiescence.
///
/// A harness owns one instance of each routing service over a shared
/// churning topology and drives `clients` closed-loop clients through a
/// virtual-time event loop (sim/time_index.hpp, so both scheduler
/// backends apply): each client issues a request, observes its latency,
/// thinks for a few ticks, and issues the next.  Link churn — random
/// flips at a fixed cadence, or an explicit script for fault-injection
/// tests — flows through `DynamicHeightsDag::add_link/remove_link`,
/// i.e. the incremental CSR patch path, so steady-state churn never
/// rebuilds a snapshot.
///
/// Latency is measured in deterministic *virtual* units derived from
/// the work a request causes (1 + route hops, plus reversal steps for
/// lock grants), never from the wall clock, so every latency number is
/// part of the determinism contract.  Wall-clock throughput
/// (requests_per_sec) is reported separately and is explicitly outside
/// that contract.
///
/// Parallel execution: each tick's read-only requests (route queries,
/// leader lookups) are sharded across a borrowed ThreadPool, each
/// worker recording into a private LatencyHistogram; the per-worker
/// histograms are summed with the histogram's exact merge.  All
/// mutation (churn, lock grant cycles, RNG draws, trace appends)
/// happens serially in popped-event order.  Together these make the
/// report — traces, histograms, fingerprint — byte-identical at every
/// worker count and under both event-scheduler backends
/// (tests/service_harness_test.cpp pins 1/2/4/8 workers x heap/wheel).

namespace lr {

/// The request families a harness drives (the per-request axis; the
/// *mix* is chosen by ServiceWorkload).
enum class RequestKind : std::uint8_t {
  kRoute,   ///< route query against the TORA router's DAG
  kLock,    ///< lock acquire/release cycle against the mutex service
  kLeader,  ///< leader lookup against the leader-election service
};

/// Number of request families (array extent of per-kind stats).
inline constexpr std::size_t kRequestKinds = 3;

/// Report-table token of a request kind ("route", "lock", "leader").
const char* request_kind_token(RequestKind kind);

/// Terminal status of one request.  Everything except kOk is a
/// *failure with reason*: the request still completes (closed-loop
/// clients never wedge) but its latency is excluded from the
/// histograms.
enum class RequestStatus : std::uint8_t {
  kOk,           ///< served; latency recorded
  kPartitioned,  ///< source had no path to the target (link churn)
  kNoLeader,     ///< no leader exists (every node failed)
};

/// Report-table token of a status ("ok", "partitioned", "no-leader").
const char* request_status_token(RequestStatus status);

/// One issued request, as recorded in the (optional) trace: the
/// exactly-once accounting unit of the fault-injection tests.
struct ServiceRequest {
  std::uint64_t id = 0;        ///< issue-order id, unique per run
  RequestKind kind = RequestKind::kRoute;  ///< request family
  NodeId source = 0;           ///< issuing node
  SimTime issued = 0;          ///< virtual tick the request was issued
  std::uint64_t latency = 1;   ///< virtual latency units (see file comment)
  std::uint64_t hops = 0;      ///< route hops traveled (0 on failure)
  RequestStatus status = RequestStatus::kOk;  ///< terminal status
};

/// One scripted churn event: applied before the first request batch at
/// or after `time`.
struct ScriptedLinkEvent {
  SimTime time = 0;   ///< virtual tick the event takes effect
  LinkEvent event;    ///< the link flip
};

/// Configuration of a ServiceHarness run.
struct ServiceOptions {
  std::size_t clients = 8;          ///< closed-loop clients
  SimTime duration = 256;           ///< virtual ticks to run for
  ServiceWorkload workload = ServiceWorkload::kMixed;  ///< request mix
  std::uint64_t seed = 1;           ///< master seed of the RNG streams
  /// Event-scheduler backend of the virtual-time loop.  Purely a
  /// performance switch: reports are byte-identical across backends.
  EventSchedulerKind scheduler = EventSchedulerKind::kHeap;
  /// Worker count of the parallel read phase: 1 = serial (default),
  /// 0 = hardware concurrency.  Reports are byte-identical at every
  /// value (the determinism contract).
  std::size_t workers = 1;
  /// Borrowed pool for the parallel read phase (e.g. from a sweep
  /// worker's WorkerPoolCache).  May be null: `workers != 1` then
  /// spawns a short-lived local pool.  Never owned.
  ThreadPool* pool = nullptr;
  /// Random link-churn cadence in virtual ticks (0 = no random churn).
  /// Ignored when `churn_script` is set.
  SimTime churn_interval = 16;
  /// Explicit churn script (fault-injection hook); overrides random
  /// churn.  Events must be sorted by time.  Borrowed, may be null.
  const std::vector<ScriptedLinkEvent>* churn_script = nullptr;
  /// Keep the full per-request trace in the report (tests; off by
  /// default because a long run's trace dwarfs its histograms).
  bool keep_trace = false;
};

/// Per-request-kind measurement block.
struct ServiceKindStats {
  LatencyHistogram histogram;    ///< latencies of served (kOk) requests
  std::uint64_t issued = 0;      ///< requests issued
  std::uint64_t completed = 0;   ///< requests served ok
  std::uint64_t failed = 0;      ///< requests failed-with-reason
  std::uint64_t hops = 0;        ///< route hops of served requests
};

/// Everything one harness run produced.
struct ServiceReport {
  /// Per-kind stats, indexed by RequestKind.
  ServiceKindStats kinds[kRequestKinds];
  std::uint64_t churn_events = 0;      ///< link flips applied
  std::uint64_t reversal_steps = 0;    ///< reversal steps across all services
  std::uint64_t snapshot_patches = 0;  ///< incremental CSR patches (churn path)
  std::uint64_t snapshot_rebuilds = 0; ///< full snapshot rebuilds (construction)
  /// Per-request trace in issue order (empty unless keep_trace).
  std::vector<ServiceRequest> trace;
  /// Wall-clock seconds of the run loop — throughput only, explicitly
  /// outside the determinism contract.
  double wall_seconds = 0.0;

  /// Requests issued across all kinds.
  std::uint64_t total_issued() const noexcept;
  /// Requests served ok across all kinds.
  std::uint64_t total_completed() const noexcept;
  /// Requests failed-with-reason across all kinds.
  std::uint64_t total_failed() const noexcept;

  /// Wall-clock requests/second (issued / wall_seconds; 0 when the
  /// clock read 0).  Outside the determinism contract.
  double requests_per_sec() const noexcept;

  /// FNV-1a over every deterministic field (per-kind histograms and
  /// counters, churn and reversal totals) — the single number the
  /// worker-count / scheduler / process-count invariance checks
  /// compare.
  std::uint64_t fingerprint() const noexcept;

  /// The latency report: one row per kind plus an "all" row merging
  /// the three.  Columns: kind, issued, completed, failed, p50, p99,
  /// p999, mean, max, hops, fingerprint — every cell deterministic.
  Table latency_table() const;
};

/// The request-serving harness; see the file comment.
class ServiceHarness {
 public:
  /// Builds the three services over `topology` (route/lock targets are
  /// `destination`; the leader is elected by the service) and prepares
  /// the client loop.  The topology must have at least one node.
  ServiceHarness(const Graph& topology, NodeId destination, ServiceOptions options);

  /// Runs the closed loop to `duration` and returns the report.  One
  /// shot: a harness runs once.
  ServiceReport run();

 private:
  struct PendingRequest;   // one tick's request, pre-drawn serially
  struct WorkerAccumulator;  // per-worker histograms + counters

  void apply_churn_until(SimTime now);
  void apply_link_event(const LinkEvent& event);

  Graph topology_;
  NodeId destination_;
  ServiceOptions options_;
  ToraRouter tora_;
  LinkReversalMutex mutex_;
  LeaderElectionService leader_;
  /// Live / down undirected link lists for random churn (swap-pop
  /// removal, deterministic in the churn RNG stream).
  std::vector<std::pair<NodeId, NodeId>> live_links_;
  std::vector<std::pair<NodeId, NodeId>> down_links_;
  std::size_t script_cursor_ = 0;   ///< next unapplied scripted event
  std::uint64_t random_churn_applied_ = 0;  ///< churn intervals consumed
  std::mt19937_64 churn_rng_;       ///< random-churn stream (seed-derived)
  std::uint64_t churn_events_ = 0;  ///< link flips applied so far
};

}  // namespace lr

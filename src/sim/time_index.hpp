#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file time_index.hpp
/// The time-ordered index behind the discrete-event core: given entries
/// tagged (time, seq), pop them in exactly (time, then seq) order — the
/// documented FIFO-within-a-tick contract of EventQueue.
///
/// Two interchangeable backends sit behind one `EventSchedulerKind` knob:
///
///  * `kHeap` — the historical binary heap of POD entries.  O(log n) per
///    operation, comparison-heavy, no horizon.
///  * `kWheel` — a hierarchical timing wheel (the calendar-queue family
///    line-rate dataplanes schedule timers with, e.g. NDN-DPDK's mintmr):
///    four levels of 64 buckets each cover an aligned 64^4-tick window
///    around a monotone reference time; entries beyond that horizon wait
///    in an overflow ring that cascades into the wheel when it drains.
///    Push is O(1); pop finds the earliest bucket with one ctz per level
///    over per-level occupancy bitmaps and amortizes cascades over the
///    entries they move.
///
/// Level rule (the part that makes order exact rather than approximate):
/// an entry at time t lives at the smallest level g whose aligned window
/// contains both t and the reference — i.e. t and ref share all bits above
/// bit 6*(g+1).  Windows never wrap, so every level-0 entry precedes every
/// level-1 entry, and so on, and the global minimum is always the first
/// set bit of the lowest non-empty level.  Within a bucket entries are a
/// FIFO list; pushes arrive in ascending seq per (time) by construction
/// (callers allocate seq monotonically and cascades replay buckets in
/// order), so FIFO order *is* seq order and pops reproduce the heap's
/// (time, seq) order byte-for-byte — the property the randomized
/// wheel-vs-heap test in tests/sim_test.cpp pins down.

namespace lr {

/// Simulated time in abstract ticks (shared with event_queue.hpp).
using SimTime = std::uint64_t;

/// Which time-index backend an event queue (or sharded event lane) uses.
/// Purely a performance switch: pop order is byte-identical across kinds.
enum class EventSchedulerKind : std::uint8_t {
  kHeap,   ///< binary heap of (time, seq) entries — the historical default
  kWheel,  ///< hierarchical timing wheel with overflow cascading
};

/// Spec-file / CLI token of an event-scheduler kind ("heap", "wheel").
const char* event_scheduler_token(EventSchedulerKind kind);

/// Parses an event-scheduler token; throws std::invalid_argument when
/// unknown.
EventSchedulerKind parse_event_scheduler(const std::string& token);

/// One indexed entry: when it fires, its FIFO tie-breaker, and an opaque
/// 32-bit payload (pool-slot index for every current client).
struct TimeIndexEntry {
  SimTime time = 0;        ///< absolute fire time (ticks)
  std::uint64_t seq = 0;   ///< FIFO tie-breaker within a tick
  std::uint32_t slot = 0;  ///< opaque payload (a pool-slot index)
};

/// The pluggable (time, seq)-ordered index; see the file comment.  Callers
/// must push monotonically non-decreasing `seq` values and never push a
/// time earlier than the last popped time (EventQueue's "no scheduling in
/// the past" rule already guarantees both).
class TimeIndex {
 public:
  /// An empty index with the given backend.
  explicit TimeIndex(EventSchedulerKind kind = EventSchedulerKind::kHeap);

  /// Inserts an entry.  Amortized O(1) for the wheel, O(log n) for the
  /// heap; no allocation once internal storage is warm.
  void push(SimTime time, std::uint64_t seq, std::uint32_t slot);

  /// Pops the earliest (time, then seq) entry into `out`; returns false
  /// when empty.
  bool pop_min(TimeIndexEntry& out);

  /// The earliest pending fire time, without popping; returns false when
  /// empty.  Strictly read-only: the wheel reference only advances inside
  /// pop_min, so a peek never invalidates the push floor (pushes at or
  /// after the last popped time remain well-placed).
  bool peek_min_time(SimTime& out) const;

  /// Number of pending entries.
  std::size_t size() const noexcept { return size_; }

  /// True iff no entry is pending.
  bool empty() const noexcept { return size_ == 0; }

  /// The configured backend.
  EventSchedulerKind kind() const noexcept { return kind_; }

 private:
  // -- wheel geometry -------------------------------------------------------
  static constexpr std::size_t kLevelBits = 6;                  ///< 64 buckets per level
  static constexpr std::size_t kBuckets = 1u << kLevelBits;     ///< buckets per level
  static constexpr std::size_t kLevels = 4;                     ///< wheel depth
  static constexpr std::size_t kHorizonBits = kLevelBits * kLevels;  ///< 24
  static constexpr std::uint32_t kNoNode = 0xffffffffu;         ///< null list link

  /// Heap entry ordering: the entry that fires later compares "greater".
  struct Later {
    bool operator()(const TimeIndexEntry& a, const TimeIndexEntry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  /// One wheel node: an indexed entry plus its intrusive FIFO link.  Nodes
  /// live in a slab vector recycled through an internal freelist, so a
  /// warmed-up wheel pushes and pops without allocating.
  struct WheelNode {
    TimeIndexEntry entry;
    std::uint32_t next = kNoNode;
  };

  /// One FIFO bucket (head/tail of an intrusive node list).
  struct Bucket {
    std::uint32_t head = kNoNode;
    std::uint32_t tail = kNoNode;
  };

  std::uint32_t alloc_node(SimTime time, std::uint64_t seq, std::uint32_t slot);
  void free_node(std::uint32_t index);
  void place(std::uint32_t node_index);
  void bucket_append(std::size_t level, std::size_t bucket, std::uint32_t node_index);
  /// Cascades until level 0 is non-empty; returns false when the index is
  /// empty.  Content- and order-preserving.
  bool ensure_level0();
  void cascade_overflow();

  EventSchedulerKind kind_;
  std::size_t size_ = 0;

  // Heap backend.
  std::vector<TimeIndexEntry> heap_;

  // Wheel backend.
  std::vector<WheelNode> nodes_;       ///< node slab (freelist-recycled)
  std::uint32_t free_head_ = kNoNode;  ///< node freelist
  Bucket buckets_[kLevels][kBuckets];
  std::uint64_t occupancy_[kLevels] = {};  ///< per-level bucket bitmaps
  std::vector<std::uint32_t> overflow_;    ///< FIFO beyond the wheel horizon
  /// Monotone reference time: every pending entry fires at or after it,
  /// and the level rule classifies entries against its aligned windows.
  SimTime ref_ = 0;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/slot_pool.hpp"
#include "sim/time_index.hpp"

/// \file network.hpp
/// A simulated asynchronous message-passing network over a fixed topology
/// graph: point-to-point messages with random per-message delays, link
/// up/down churn, and per-node delivery handlers.
///
/// This is the substitute substrate for the mobile ad-hoc networks that
/// motivate link reversal routing (Gafni–Bertsekas's "frequently changing
/// topology"; docs/ARCHITECTURE.md, sim layer): the algorithms only
/// require eventual delivery on up links, which the simulator provides.
///
/// Hot-path layout (docs/PERFORMANCE.md): adjacency checks run over a
/// `CsrGraph` snapshot (borrowed from the sweep cache when available), and
/// every in-flight message lives in a pooled slot whose payload vector is
/// recycled — combined with the pooled `EventQueue`, a warmed-up simulation
/// sends, delivers, and re-sends messages with zero heap allocation.

namespace lr {

class ShardedEventLoop;
class ThreadPool;

/// An application message.  The payload layout is protocol-defined (the
/// distributed link-reversal protocol ships heights as int64 tuples).
struct NetMessage {
  NodeId from = kNoNode;              ///< sending node
  NodeId to = kNoNode;                ///< receiving node
  std::vector<std::int64_t> payload;  ///< protocol-defined words
};

/// Delay, seed, and failure-injection knobs of a simulated network.
struct NetworkConfig {
  SimTime min_delay = 1;   ///< per-message delay lower bound (ticks)
  SimTime max_delay = 10;  ///< per-message delay upper bound (ticks)
  std::uint64_t seed = 1;  ///< RNG seed for delays and failures

  /// Failure injection: each message is independently dropped with this
  /// probability (in addition to down-link drops), and delivered twice with
  /// `duplicate_probability` (modeling link-layer retransmit duplicates).
  /// Protocols must tolerate both; see DistLinkReversal's monotone-height
  /// filter and resync rounds.
  double drop_probability = 0.0;
  /// See `drop_probability`.
  double duplicate_probability = 0.0;

  /// Time-index backend of the event core (heap or timing wheel,
  /// time_index.hpp).  Purely a performance switch: delivery order,
  /// counters, and quiescence times are byte-identical across backends.
  EventSchedulerKind scheduler = EventSchedulerKind::kHeap;

  /// Event-loop worker count: 1 (default) drives the serial EventQueue;
  /// 0 means hardware concurrency; N > 1 runs the sharded per-node event
  /// lanes (sharded_loop.hpp) on N workers.  Also purely a performance
  /// switch — the sharded loop's deterministic merge reproduces the serial
  /// queue's delivery order, RNG stream, and counters byte-for-byte at
  /// every worker count.  Sharded mode drives protocol messages only;
  /// application events co-scheduled through queue() (e.g. DistRouter's
  /// packet hops) are unsupported there and rejected by run_until_idle.
  std::size_t sim_threads = 1;

  /// Optional borrowed worker pool for sharded mode (its size overrides
  /// `sim_threads`); nullptr makes the network own a pool.  Borrowing lets
  /// a sweep reuse one pool across runs (runner.hpp's per-worker cache).
  ThreadPool* sim_pool = nullptr;
};

/// The simulated asynchronous network: messages, delays, churn, handlers.
class Network {
 public:
  /// Per-node delivery callback.  The referenced message is valid only for
  /// the duration of the call (its slot is recycled afterwards).
  using Handler = std::function<void(const NetMessage&)>;

  /// Builds the network over `g`, which must outlive it.  A private
  /// `CsrGraph` snapshot is built for adjacency lookups.
  Network(const Graph& g, NetworkConfig config);

  /// Same, but borrows `frozen` — a CSR snapshot of `g` (e.g. the sweep
  /// cache's) — instead of building one.  `frozen` must outlive the
  /// network and match `g`'s node and edge counts (else
  /// std::invalid_argument).
  Network(const Graph& g, NetworkConfig config, const CsrGraph& frozen);

  /// Handlers and in-flight events capture `this`; copying or moving would
  /// dangle them, so both are disabled.
  Network(const Network&) = delete;
  /// \copydoc Network(const Network&)
  Network& operator=(const Network&) = delete;

  /// Out-of-line so the sharded loop can be an incomplete type here.
  ~Network();

  /// The topology graph the network was built over.
  const Graph& graph() const noexcept { return *graph_; }

  /// The underlying event queue (for co-scheduling application events;
  /// serial mode only — see NetworkConfig::sim_threads).
  EventQueue& queue() noexcept { return queue_; }

  /// Current simulated time.
  SimTime now() const noexcept;

  /// Installs the delivery callback of node `u`.
  void set_handler(NodeId u, Handler handler) { handlers_[u] = std::move(handler); }

  /// Sends `payload` from `from` to adjacent node `to`.  The message is
  /// delivered after a random delay if the link is up *at send time*;
  /// otherwise it is dropped (counted).  Throws if the nodes are not
  /// adjacent in the topology graph.  The payload is copied into a pooled
  /// message slot before this call returns, so callers may reuse their
  /// buffer immediately.
  void send(NodeId from, NodeId to, std::span<const std::int64_t> payload);

  /// Braced-list convenience: `send(u, v, {a, b})` ships the words without
  /// materializing a vector.
  void send(NodeId from, NodeId to, std::initializer_list<std::int64_t> payload) {
    send(from, to, std::span<const std::int64_t>(payload.begin(), payload.size()));
  }

  /// Marks a link up or down.  Messages already in flight still arrive
  /// (they model frames already on the medium).
  void set_link_up(EdgeId e, bool up) { link_up_[e] = up; }
  /// True iff link `e` is currently up.
  bool link_up(EdgeId e) const { return link_up_[e]; }

  /// Runs the simulation until no events remain (or the safety budget is
  /// hit); returns events executed.  In sharded mode the budget binds at
  /// tick granularity (whole ticks execute atomically); the default budget
  /// never binds either way.
  std::uint64_t run_until_idle(std::uint64_t max_events = 50'000'000);

  /// The sharded event loop when sim_threads selected one, else nullptr.
  const ShardedEventLoop* sharded_loop() const noexcept { return sharded_.get(); }

  /// Messages handed to send() (dropped ones included).
  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  /// Messages delivered to a handler slot (duplicates counted).
  std::uint64_t messages_delivered() const noexcept { return messages_delivered_; }
  /// Messages dropped by down links or injected loss.
  std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }

  /// Message-pool slots ever allocated (the high-water mark of in-flight
  /// messages); stable across steady-state send/deliver cycles.  Sharded
  /// mode sums the per-shard pools.
  std::size_t message_pool_slots() const noexcept;

 private:
  friend class ShardedEventLoop;  ///< drives plan_send/handlers_/counters

  void deliver(std::uint32_t index);

  /// The send decision shared by the serial path and the sharded merge:
  /// adjacency check (throws when not adjacent), sent/dropped counters,
  /// link-state and loss filtering, and the delay/duplicate RNG draws —
  /// in exactly the serial draw order, so both paths consume the one RNG
  /// stream identically.  Returns the number of copies to deliver (0 when
  /// dropped) and fills `delays` with that many per-copy delays.
  std::size_t plan_send(NodeId from, NodeId to, SimTime (&delays)[2]);

  const Graph* graph_;
  const CsrGraph* csr_;               ///< adjacency snapshot (owned or borrowed)
  std::optional<CsrGraph> owned_csr_; ///< engaged iff the snapshot is owned
  NetworkConfig config_;
  EventQueue queue_;
  std::mt19937_64 rng_;
  std::vector<Handler> handlers_;
  std::vector<std::uint8_t> link_up_;
  /// In-flight message pool (slot_pool.hpp); recycled payload vectors keep
  /// their capacity, so steady-state sends do not allocate.
  SlotPool<NetMessage> pool_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  /// Engaged when sim_threads selected sharded mode; replaces queue_ as
  /// the execution engine (queue_ stays for the serial path and the
  /// queue() accessor).  Last member: it captures `this` internals.
  std::unique_ptr<ShardedEventLoop> sharded_;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/slot_pool.hpp"

/// \file network.hpp
/// A simulated asynchronous message-passing network over a fixed topology
/// graph: point-to-point messages with random per-message delays, link
/// up/down churn, and per-node delivery handlers.
///
/// This is the substitute substrate for the mobile ad-hoc networks that
/// motivate link reversal routing (Gafni–Bertsekas's "frequently changing
/// topology"; docs/ARCHITECTURE.md, sim layer): the algorithms only
/// require eventual delivery on up links, which the simulator provides.
///
/// Hot-path layout (docs/PERFORMANCE.md): adjacency checks run over a
/// `CsrGraph` snapshot (borrowed from the sweep cache when available), and
/// every in-flight message lives in a pooled slot whose payload vector is
/// recycled — combined with the pooled `EventQueue`, a warmed-up simulation
/// sends, delivers, and re-sends messages with zero heap allocation.

namespace lr {

/// An application message.  The payload layout is protocol-defined (the
/// distributed link-reversal protocol ships heights as int64 tuples).
struct NetMessage {
  NodeId from = kNoNode;              ///< sending node
  NodeId to = kNoNode;                ///< receiving node
  std::vector<std::int64_t> payload;  ///< protocol-defined words
};

/// Delay, seed, and failure-injection knobs of a simulated network.
struct NetworkConfig {
  SimTime min_delay = 1;   ///< per-message delay lower bound (ticks)
  SimTime max_delay = 10;  ///< per-message delay upper bound (ticks)
  std::uint64_t seed = 1;  ///< RNG seed for delays and failures

  /// Failure injection: each message is independently dropped with this
  /// probability (in addition to down-link drops), and delivered twice with
  /// `duplicate_probability` (modeling link-layer retransmit duplicates).
  /// Protocols must tolerate both; see DistLinkReversal's monotone-height
  /// filter and resync rounds.
  double drop_probability = 0.0;
  /// See `drop_probability`.
  double duplicate_probability = 0.0;
};

/// The simulated asynchronous network: messages, delays, churn, handlers.
class Network {
 public:
  /// Per-node delivery callback.  The referenced message is valid only for
  /// the duration of the call (its slot is recycled afterwards).
  using Handler = std::function<void(const NetMessage&)>;

  /// Builds the network over `g`, which must outlive it.  A private
  /// `CsrGraph` snapshot is built for adjacency lookups.
  Network(const Graph& g, NetworkConfig config);

  /// Same, but borrows `frozen` — a CSR snapshot of `g` (e.g. the sweep
  /// cache's) — instead of building one.  `frozen` must outlive the
  /// network and match `g`'s node and edge counts (else
  /// std::invalid_argument).
  Network(const Graph& g, NetworkConfig config, const CsrGraph& frozen);

  /// Handlers and in-flight events capture `this`; copying or moving would
  /// dangle them, so both are disabled.
  Network(const Network&) = delete;
  /// \copydoc Network(const Network&)
  Network& operator=(const Network&) = delete;

  /// The topology graph the network was built over.
  const Graph& graph() const noexcept { return *graph_; }

  /// The underlying event queue (for co-scheduling application events).
  EventQueue& queue() noexcept { return queue_; }

  /// Current simulated time.
  SimTime now() const noexcept { return queue_.now(); }

  /// Installs the delivery callback of node `u`.
  void set_handler(NodeId u, Handler handler) { handlers_[u] = std::move(handler); }

  /// Sends `payload` from `from` to adjacent node `to`.  The message is
  /// delivered after a random delay if the link is up *at send time*;
  /// otherwise it is dropped (counted).  Throws if the nodes are not
  /// adjacent in the topology graph.  The payload is copied into a pooled
  /// message slot before this call returns, so callers may reuse their
  /// buffer immediately.
  void send(NodeId from, NodeId to, std::span<const std::int64_t> payload);

  /// Braced-list convenience: `send(u, v, {a, b})` ships the words without
  /// materializing a vector.
  void send(NodeId from, NodeId to, std::initializer_list<std::int64_t> payload) {
    send(from, to, std::span<const std::int64_t>(payload.begin(), payload.size()));
  }

  /// Marks a link up or down.  Messages already in flight still arrive
  /// (they model frames already on the medium).
  void set_link_up(EdgeId e, bool up) { link_up_[e] = up; }
  /// True iff link `e` is currently up.
  bool link_up(EdgeId e) const { return link_up_[e]; }

  /// Runs the simulation until no events remain (or the safety budget is
  /// hit); returns events executed.
  std::uint64_t run_until_idle(std::uint64_t max_events = 50'000'000) {
    return queue_.run_until_idle(max_events);
  }

  /// Messages handed to send() (dropped ones included).
  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  /// Messages delivered to a handler slot (duplicates counted).
  std::uint64_t messages_delivered() const noexcept { return messages_delivered_; }
  /// Messages dropped by down links or injected loss.
  std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }

  /// Message-pool slots ever allocated (the high-water mark of in-flight
  /// messages); stable across steady-state send/deliver cycles.
  std::size_t message_pool_slots() const noexcept { return pool_.slots(); }

 private:
  void deliver(std::uint32_t index);

  const Graph* graph_;
  const CsrGraph* csr_;               ///< adjacency snapshot (owned or borrowed)
  std::optional<CsrGraph> owned_csr_; ///< engaged iff the snapshot is owned
  NetworkConfig config_;
  EventQueue queue_;
  std::mt19937_64 rng_;
  std::vector<Handler> handlers_;
  std::vector<std::uint8_t> link_up_;
  /// In-flight message pool (slot_pool.hpp); recycled payload vectors keep
  /// their capacity, so steady-state sends do not allocate.
  SlotPool<NetMessage> pool_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace lr

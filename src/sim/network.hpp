#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "graph/graph.hpp"
#include "sim/event_queue.hpp"

/// \file network.hpp
/// A simulated asynchronous message-passing network over a fixed topology
/// graph: point-to-point messages with random per-message delays, link
/// up/down churn, and per-node delivery handlers.
///
/// This is the substitute substrate for the mobile ad-hoc networks that
/// motivate link reversal routing (Gafni–Bertsekas's "frequently changing
/// topology"; docs/ARCHITECTURE.md, sim layer): the algorithms only
/// require eventual delivery on up links, which the simulator provides.

namespace lr {

/// An application message.  The payload layout is protocol-defined (the
/// distributed link-reversal protocol ships heights as int64 tuples).
struct NetMessage {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::vector<std::int64_t> payload;
};

struct NetworkConfig {
  SimTime min_delay = 1;   ///< per-message delay lower bound (ticks)
  SimTime max_delay = 10;  ///< per-message delay upper bound (ticks)
  std::uint64_t seed = 1;  ///< RNG seed for delays and failures

  /// Failure injection: each message is independently dropped with this
  /// probability (in addition to down-link drops), and delivered twice with
  /// `duplicate_probability` (modeling link-layer retransmit duplicates).
  /// Protocols must tolerate both; see DistLinkReversal's monotone-height
  /// filter and resync rounds.
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

class Network {
 public:
  using Handler = std::function<void(const NetMessage&)>;

  Network(const Graph& g, NetworkConfig config);

  const Graph& graph() const noexcept { return *graph_; }
  EventQueue& queue() noexcept { return queue_; }
  SimTime now() const noexcept { return queue_.now(); }

  /// Installs the delivery callback of node `u`.
  void set_handler(NodeId u, Handler handler) { handlers_[u] = std::move(handler); }

  /// Sends `payload` from `from` to adjacent node `to`.  The message is
  /// delivered after a random delay if the link is up *at send time*;
  /// otherwise it is dropped (counted).  Throws if the nodes are not
  /// adjacent in the topology graph.
  void send(NodeId from, NodeId to, std::vector<std::int64_t> payload);

  /// Marks a link up or down.  Messages already in flight still arrive
  /// (they model frames already on the medium).
  void set_link_up(EdgeId e, bool up) { link_up_[e] = up; }
  bool link_up(EdgeId e) const { return link_up_[e]; }

  /// Runs the simulation until no events remain (or the safety budget is
  /// hit); returns events executed.
  std::uint64_t run_until_idle(std::uint64_t max_events = 50'000'000) {
    return queue_.run_until_idle(max_events);
  }

  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  std::uint64_t messages_delivered() const noexcept { return messages_delivered_; }
  std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }

 private:
  const Graph* graph_;
  NetworkConfig config_;
  EventQueue queue_;
  std::mt19937_64 rng_;
  std::vector<Handler> handlers_;
  std::vector<std::uint8_t> link_up_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace lr

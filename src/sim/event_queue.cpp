#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace lr {

void EventQueue::schedule_at(SimTime at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: cannot schedule in the past");
  }
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool EventQueue::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top only exposes const&, so the event (and its
  // std::function) is copied out before the pop.  Events are small; the
  // copy is not worth a custom heap.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++executed_;
  event.fn();
  return true;
}

std::uint64_t EventQueue::run_until_idle(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (ran < max_events && run_one()) ++ran;
  return ran;
}

}  // namespace lr

#include "sim/event_queue.hpp"

#include <stdexcept>

namespace lr {

EventQueue::~EventQueue() {
  // Freed slots have null hooks; anything still engaged is a pending event
  // whose callable must be torn down.
  for (std::uint32_t index = 0; index < pool_.slots(); ++index) {
    Slot& slot = pool_[index];
    if (slot.destroy != nullptr) slot.destroy(slot.storage);
  }
}

void EventQueue::check_schedulable(SimTime at) const {
  if (at < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: cannot schedule in the past");
  }
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = pool_[index];
  if (slot.destroy != nullptr) slot.destroy(slot.storage);
  slot.invoke = nullptr;
  slot.destroy = nullptr;
  pool_.release(index);
}

void EventQueue::push_entry(SimTime at, std::uint32_t index) {
  index_.push(at, next_seq_++, index);
}

bool EventQueue::run_one() {
  TimeIndexEntry entry;
  if (!index_.pop_min(entry)) return false;
  now_ = entry.time;
  ++executed_;
  // Release the slot whether or not the callback throws (a throwing event
  // must not strand its slot outside the freelist), but only *after* it
  // finishes: a reentrant schedule from inside the callback can then never
  // recycle the running event's storage.  Slot addresses are stable under
  // reentrant growth (slot_pool.hpp).
  struct ReleaseGuard {
    EventQueue* queue;
    std::uint32_t index;
    ~ReleaseGuard() { queue->release_slot(index); }
  } guard{this, entry.slot};
  Slot& slot = pool_[entry.slot];
  slot.invoke(slot.storage);
  return true;
}

std::uint64_t EventQueue::run_until_idle(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (ran < max_events && run_one()) ++ran;
  return ran;
}

}  // namespace lr

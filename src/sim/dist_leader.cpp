#include "sim/dist_leader.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

namespace lr {

DistLeaderElection::DistLeaderElection(const Graph& topology, Network& network)
    : graph_(&topology), network_(&network), csr_(topology) {
  const std::size_t n = graph_->num_nodes();
  candidate_.resize(n);
  a_.assign(n, 0);
  b_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    candidate_[u] = u;  // everyone starts believing in itself
    b_[u] = static_cast<std::int64_t>(u);
  }
  adoptions_.assign(n, 0);
  height_steps_.assign(n, 0);
  views_.resize(2 * csr_.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    const CsrPos end = csr_.adjacency_end(u);
    for (CsrPos p = csr_.adjacency_begin(u); p < end; ++p) {
      const NodeId v = csr_.neighbor_at(p);
      views_[p] = View{v, a_[v], b_[v]};
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    network_->set_handler(u, [this](const NetMessage& message) { on_message(message); });
  }
}

void DistLeaderElection::start() {
  // Views start exact, so no initial broadcast is needed; every node just
  // evaluates its first action (adopt the best neighboring candidate, or
  // fire a PR step if it is an initial non-leader sink).
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) maybe_act(u);
}

std::optional<NodeId> DistLeaderElection::agreed_leader() const {
  const NodeId first = candidate_.empty() ? kNoNode : candidate_[0];
  for (const NodeId c : candidate_) {
    if (c != first) return std::nullopt;
  }
  return first;
}

bool DistLeaderElection::leader_is_unique_sink() const {
  const auto leader = agreed_leader();
  if (!leader) return false;
  // Direction by actual heights (valid once candidates agree): node u is a
  // sink iff its height is below all its neighbors'.
  std::size_t sinks = 0;
  bool leader_sink = false;
  for (NodeId u = 0; u < csr_.num_nodes(); ++u) {
    const CsrPos begin = csr_.adjacency_begin(u);
    const CsrPos end = csr_.adjacency_end(u);
    if (begin == end) continue;
    bool below_all = true;
    for (CsrPos p = begin; p < end; ++p) {
      const NodeId v = csr_.neighbor_at(p);
      if (std::tuple(a_[u], b_[u], u) > std::tuple(a_[v], b_[v], v)) {
        below_all = false;
        break;
      }
    }
    if (below_all) {
      ++sinks;
      if (u == *leader) leader_sink = true;
    }
  }
  return sinks == 1 && leader_sink;
}

std::size_t DistLeaderElection::view_slot(NodeId u, NodeId neighbor) const {
  // Precondition: messages only arrive from topology neighbors, so the
  // position always exists.
  return *csr_.position_of(u, neighbor);
}

bool DistLeaderElection::height_below_all_neighbors(NodeId u) const {
  const CsrPos begin = csr_.adjacency_begin(u);
  const CsrPos end = csr_.adjacency_end(u);
  if (begin == end) return false;
  const auto own = std::tuple(a_[u], b_[u], u);
  for (CsrPos p = begin; p < end; ++p) {
    const View& view = views_[p];
    // A PR step is only meaningful among nodes that agree on the candidate.
    if (view.candidate != candidate_[u]) return false;
    if (std::tuple(view.a, view.b, csr_.neighbor_at(p)) < own) return false;
  }
  return true;
}

void DistLeaderElection::maybe_act(NodeId u) {
  // 1. Adopt the best candidate any neighbor reports.
  const CsrPos begin = csr_.adjacency_begin(u);
  const CsrPos end = csr_.adjacency_end(u);
  CsrPos best_slot = begin;
  NodeId best_candidate = candidate_[u];
  for (CsrPos p = begin; p < end; ++p) {
    if (views_[p].candidate > best_candidate) {
      best_candidate = views_[p].candidate;
      best_slot = p;
    }
  }
  if (best_candidate > candidate_[u]) {
    candidate_[u] = best_candidate;
    // Re-orient towards the adoptee's region: land just above the neighbor
    // we heard it from, so our edge points at them.
    a_[u] = views_[best_slot].a;
    b_[u] = views_[best_slot].b + 1;
    ++adoptions_[u];
    broadcast(u);
    return;
  }

  // 2. Ordinary partial-reversal step when u is a non-leader local sink.
  if (candidate_[u] == u || !height_below_all_neighbors(u)) return;
  std::int64_t min_a = std::numeric_limits<std::int64_t>::max();
  for (CsrPos p = begin; p < end; ++p) min_a = std::min(min_a, views_[p].a);
  const std::int64_t new_a = min_a + 1;
  std::int64_t min_b = std::numeric_limits<std::int64_t>::max();
  bool tie = false;
  for (CsrPos p = begin; p < end; ++p) {
    if (views_[p].a == new_a) {
      tie = true;
      min_b = std::min(min_b, views_[p].b);
    }
  }
  a_[u] = new_a;
  if (tie) b_[u] = min_b - 1;
  ++height_steps_[u];
  broadcast(u);
}

std::uint64_t DistLeaderElection::candidate_adoptions() const {
  std::uint64_t total = 0;
  for (const std::uint64_t a : adoptions_) total += a;
  return total;
}

std::uint64_t DistLeaderElection::height_steps() const {
  std::uint64_t total = 0;
  for (const std::uint64_t s : height_steps_) total += s;
  return total;
}

void DistLeaderElection::broadcast(NodeId u) {
  for (const NodeId v : csr_.neighbors(u)) {
    network_->send(u, v, {static_cast<std::int64_t>(candidate_[u]), a_[u], b_[u]});
  }
}

void DistLeaderElection::on_message(const NetMessage& message) {
  const NodeId u = message.to;
  const NodeId from = message.from;
  const std::size_t slot = view_slot(u, from);
  View& view = views_[slot];
  // (candidate, a, b) grows monotonically per sender, so this filter drops
  // stale re-ordered messages.
  const auto incoming = std::tuple(static_cast<NodeId>(message.payload.at(0)),
                                   message.payload.at(1), message.payload.at(2));
  const auto current = std::tuple(view.candidate, view.a, view.b);
  if (incoming <= current) return;
  view.candidate = static_cast<NodeId>(message.payload[0]);
  view.a = message.payload[1];
  view.b = message.payload[2];
  maybe_act(u);
}

}  // namespace lr

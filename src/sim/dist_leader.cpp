#include "sim/dist_leader.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

namespace lr {

DistLeaderElection::DistLeaderElection(const Graph& topology, Network& network)
    : graph_(&topology), network_(&network) {
  const std::size_t n = graph_->num_nodes();
  candidate_.resize(n);
  a_.assign(n, 0);
  b_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    candidate_[u] = u;  // everyone starts believing in itself
    b_[u] = static_cast<std::int64_t>(u);
  }
  offsets_.resize(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) offsets_[u + 1] = offsets_[u] + graph_->degree(u);
  views_.resize(offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = graph_->neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i].neighbor;
      views_[offsets_[u] + i] = View{v, a_[v], b_[v]};
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    network_->set_handler(u, [this](const NetMessage& message) { on_message(message); });
  }
}

void DistLeaderElection::start() {
  // Views start exact, so no initial broadcast is needed; every node just
  // evaluates its first action (adopt the best neighboring candidate, or
  // fire a PR step if it is an initial non-leader sink).
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) maybe_act(u);
}

std::optional<NodeId> DistLeaderElection::agreed_leader() const {
  const NodeId first = candidate_.empty() ? kNoNode : candidate_[0];
  for (const NodeId c : candidate_) {
    if (c != first) return std::nullopt;
  }
  return first;
}

bool DistLeaderElection::leader_is_unique_sink() const {
  const auto leader = agreed_leader();
  if (!leader) return false;
  // Direction by actual heights (valid once candidates agree): node u is a
  // sink iff its height is below all its neighbors'.
  std::size_t sinks = 0;
  bool leader_sink = false;
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
    if (graph_->degree(u) == 0) continue;
    bool below_all = true;
    for (const Incidence& inc : graph_->neighbors(u)) {
      const NodeId v = inc.neighbor;
      if (std::tuple(a_[u], b_[u], u) > std::tuple(a_[v], b_[v], v)) {
        below_all = false;
        break;
      }
    }
    if (below_all) {
      ++sinks;
      if (u == *leader) leader_sink = true;
    }
  }
  return sinks == 1 && leader_sink;
}

std::size_t DistLeaderElection::view_slot(NodeId u, NodeId neighbor) const {
  const auto nbrs = graph_->neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), neighbor,
                                   [](const Incidence& inc, NodeId target) {
                                     return inc.neighbor < target;
                                   });
  return offsets_[u] + static_cast<std::size_t>(it - nbrs.begin());
}

bool DistLeaderElection::height_below_all_neighbors(NodeId u) const {
  const auto nbrs = graph_->neighbors(u);
  if (nbrs.empty()) return false;
  const auto own = std::tuple(a_[u], b_[u], u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const View& view = views_[offsets_[u] + i];
    // A PR step is only meaningful among nodes that agree on the candidate.
    if (view.candidate != candidate_[u]) return false;
    if (std::tuple(view.a, view.b, nbrs[i].neighbor) < own) return false;
  }
  return true;
}

void DistLeaderElection::maybe_act(NodeId u) {
  // 1. Adopt the best candidate any neighbor reports.
  const auto nbrs = graph_->neighbors(u);
  std::size_t best_slot = 0;
  NodeId best_candidate = candidate_[u];
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const View& view = views_[offsets_[u] + i];
    if (view.candidate > best_candidate) {
      best_candidate = view.candidate;
      best_slot = offsets_[u] + i;
    }
  }
  if (best_candidate > candidate_[u]) {
    candidate_[u] = best_candidate;
    // Re-orient towards the adoptee's region: land just above the neighbor
    // we heard it from, so our edge points at them.
    a_[u] = views_[best_slot].a;
    b_[u] = views_[best_slot].b + 1;
    ++adoptions_;
    broadcast(u);
    return;
  }

  // 2. Ordinary partial-reversal step when u is a non-leader local sink.
  if (candidate_[u] == u || !height_below_all_neighbors(u)) return;
  std::int64_t min_a = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    min_a = std::min(min_a, views_[offsets_[u] + i].a);
  }
  const std::int64_t new_a = min_a + 1;
  std::int64_t min_b = std::numeric_limits<std::int64_t>::max();
  bool tie = false;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (views_[offsets_[u] + i].a == new_a) {
      tie = true;
      min_b = std::min(min_b, views_[offsets_[u] + i].b);
    }
  }
  a_[u] = new_a;
  if (tie) b_[u] = min_b - 1;
  ++height_steps_;
  broadcast(u);
}

void DistLeaderElection::broadcast(NodeId u) {
  for (const Incidence& inc : graph_->neighbors(u)) {
    network_->send(u, inc.neighbor,
                   {static_cast<std::int64_t>(candidate_[u]), a_[u], b_[u]});
  }
}

void DistLeaderElection::on_message(const NetMessage& message) {
  const NodeId u = message.to;
  const NodeId from = message.from;
  const std::size_t slot = view_slot(u, from);
  View& view = views_[slot];
  // (candidate, a, b) grows monotonically per sender, so this filter drops
  // stale re-ordered messages.
  const auto incoming = std::tuple(static_cast<NodeId>(message.payload.at(0)),
                                   message.payload.at(1), message.payload.at(2));
  const auto current = std::tuple(view.candidate, view.a, view.b);
  if (incoming <= current) return;
  view.candidate = static_cast<NodeId>(message.payload[0]);
  view.a = message.payload[1];
  view.b = message.payload[2];
  maybe_act(u);
}

}  // namespace lr

#include "sim/sharded_loop.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lr {

namespace {

/// Which shard the current thread is executing during a parallel phase
/// (workers only; meaningless outside run_phase).
thread_local std::size_t tls_shard_index = 0;
/// Global seq of the delivery whose handler is currently running — the
/// merge key stamped on every send the handler defers.
thread_local std::uint64_t tls_trigger_seq = 0;

}  // namespace

ShardedEventLoop::ShardedEventLoop(Network& network, std::size_t workers,
                                   EventSchedulerKind scheduler, ThreadPool* pool)
    : network_(&network), num_nodes_(network.graph().num_nodes()) {
  if (pool != nullptr) {
    pool_ = pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(workers);
    pool_ = owned_pool_.get();
  }
  if (num_nodes_ == 0) {
    throw std::invalid_argument("ShardedEventLoop: network has no nodes");
  }
  const std::size_t shards = std::min(pool_->size(), num_nodes_);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(scheduler));
  }
}

ShardedEventLoop::~ShardedEventLoop() = default;

std::size_t ShardedEventLoop::message_pool_slots() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pool.slots();
  return total;
}

bool ShardedEventLoop::idle() const {
  for (const auto& shard : shards_) {
    if (shard->next_time != kNoTime || shard->lane_min != kNoTime) return false;
  }
  return true;
}

void ShardedEventLoop::submit(NodeId from, NodeId to, std::span<const std::int64_t> payload) {
  if (!in_parallel_) {
    // Serial context (protocol start / resync / release calls between
    // runs): execute the send immediately, exactly like the serial queue.
    immediate_send(from, to, payload);
    return;
  }
  // Parallel phase: defer into this shard's outbox.  The outbox stays
  // ascending in trigger seq because the shard pops its deliveries in
  // (time, seq) order.
  Shard& shard = *shards_[tls_shard_index];
  const std::uint32_t offset = static_cast<std::uint32_t>(shard.arena.size());
  shard.arena.insert(shard.arena.end(), payload.begin(), payload.end());
  shard.outbox.push_back(
      PendingSend{tls_trigger_seq, from, to, offset, static_cast<std::uint32_t>(payload.size())});
}

void ShardedEventLoop::immediate_send(NodeId from, NodeId to,
                                      std::span<const std::int64_t> payload) {
  SimTime delays[2];
  const std::size_t copies = network_->plan_send(from, to, delays);
  for (std::size_t i = 0; i < copies; ++i) {
    Shard& dest = *shards_[shard_of(to)];
    const std::uint32_t slot = dest.pool.acquire();
    NetMessage& message = dest.pool[slot];
    message.from = from;
    message.to = to;
    message.payload.assign(payload.begin(), payload.end());
    const Delivery delivery{now_ + delays[i], next_seq_++, slot};
    if (!dest.ring.try_push(delivery)) dest.spill.push_back(delivery);
    dest.lane_min = std::min(dest.lane_min, delivery.time);
  }
}

void ShardedEventLoop::run_phase(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  tls_shard_index = shard_index;
  shard.phase_delivered = 0;
  try {
    // Drain the lane into the time index: ring first, spill after.  Both
    // segments are ascending in seq and every ring seq precedes every
    // spill seq (the producer spills only once the ring is full), so
    // same-tick FIFO order survives — the wheel backend relies on it.
    Delivery delivery;
    while (shard.ring.try_pop(delivery)) {
      shard.index.push(delivery.time, delivery.seq, delivery.slot);
    }
    for (const Delivery& spilled : shard.spill) {
      shard.index.push(spilled.time, spilled.seq, spilled.slot);
    }
    shard.spill.clear();

    // Run every delivery at the current tick in (time, seq) order.
    SimTime next;
    while (shard.index.peek_min_time(next) && next == now_) {
      TimeIndexEntry entry;
      shard.index.pop_min(entry);
      ++shard.phase_delivered;
      NetMessage& message = shard.pool[entry.slot];
      tls_trigger_seq = entry.seq;
      if (network_->handlers_[message.to]) network_->handlers_[message.to](message);
      message.payload.clear();  // keeps capacity for the next send
      shard.pool.release(entry.slot);
    }
    shard.next_time = shard.index.peek_min_time(next) ? next : kNoTime;
  } catch (...) {
    shard.error = std::current_exception();
  }
}

void ShardedEventLoop::merge_outboxes() {
  // K-way merge of the per-shard outboxes by trigger seq (each outbox is
  // already ascending, and seqs are globally unique): replays the phase's
  // handler sends in exactly the interleaving the serial queue would have
  // executed them, so plan_send consumes the RNG draw-for-draw
  // identically.
  std::vector<std::size_t> cursor(shards_.size(), 0);
  while (true) {
    std::size_t best = shards_.size();
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const Shard& shard = *shards_[s];
      if (cursor[s] < shard.outbox.size() && shard.outbox[cursor[s]].trigger_seq < best_seq) {
        best = s;
        best_seq = shard.outbox[cursor[s]].trigger_seq;
      }
    }
    if (best == shards_.size()) break;
    Shard& shard = *shards_[best];
    const PendingSend& send = shard.outbox[cursor[best]++];
    immediate_send(send.from, send.to,
                   std::span<const std::int64_t>(shard.arena.data() + send.offset, send.words));
  }
  for (const auto& shard : shards_) {
    shard->outbox.clear();
    shard->arena.clear();
  }
}

std::uint64_t ShardedEventLoop::run_until_idle(std::uint64_t max_events) {
  if (!network_->queue_.empty()) {
    throw std::logic_error(
        "ShardedEventLoop: application events on Network::queue() are unsupported in "
        "sharded mode (set sim_threads = 1)");
  }
  std::uint64_t ran = 0;
  while (ran < max_events) {
    SimTime tick = kNoTime;
    for (const auto& shard : shards_) {
      tick = std::min({tick, shard->next_time, shard->lane_min});
    }
    if (tick == kNoTime) break;
    now_ = tick;
    in_parallel_ = true;
    pool_->run([this](std::size_t worker) {
      if (worker < shards_.size()) run_phase(worker);
    });
    in_parallel_ = false;
    std::uint64_t delivered = 0;
    for (const auto& shard : shards_) {
      if (shard->error) {
        std::exception_ptr error = shard->error;
        shard->error = nullptr;
        std::rethrow_exception(error);
      }
      delivered += shard->phase_delivered;
      shard->lane_min = kNoTime;  // lanes fully drained by the phase
    }
    ran += delivered;
    network_->messages_delivered_ += delivered;
    merge_outboxes();  // refills lanes and lane_min for the next tick
  }
  return ran;
}

}  // namespace lr

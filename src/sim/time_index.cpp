#include "sim/time_index.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace lr {

const char* event_scheduler_token(EventSchedulerKind kind) {
  switch (kind) {
    case EventSchedulerKind::kHeap:
      return "heap";
    case EventSchedulerKind::kWheel:
      return "wheel";
  }
  return "?";
}

EventSchedulerKind parse_event_scheduler(const std::string& token) {
  if (token == "heap") return EventSchedulerKind::kHeap;
  if (token == "wheel") return EventSchedulerKind::kWheel;
  throw std::invalid_argument("unknown event scheduler '" + token + "' (known: heap, wheel)");
}

TimeIndex::TimeIndex(EventSchedulerKind kind) : kind_(kind) {}

std::uint32_t TimeIndex::alloc_node(SimTime time, std::uint64_t seq, std::uint32_t slot) {
  std::uint32_t index;
  if (free_head_ != kNoNode) {
    index = free_head_;
    free_head_ = nodes_[index].next;
  } else {
    nodes_.emplace_back();
    index = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  nodes_[index].entry = TimeIndexEntry{time, seq, slot};
  nodes_[index].next = kNoNode;
  return index;
}

void TimeIndex::free_node(std::uint32_t index) {
  nodes_[index].next = free_head_;
  free_head_ = index;
}

void TimeIndex::bucket_append(std::size_t level, std::size_t bucket, std::uint32_t node_index) {
  Bucket& b = buckets_[level][bucket];
  if (b.head == kNoNode) {
    b.head = b.tail = node_index;
  } else {
    nodes_[b.tail].next = node_index;
    b.tail = node_index;
  }
  occupancy_[level] |= std::uint64_t{1} << bucket;
}

void TimeIndex::place(std::uint32_t node_index) {
  const SimTime t = nodes_[node_index].entry.time;
  // Beyond the wheel horizon (t and ref_ disagree above bit 24): park in
  // the overflow ring.  Appends keep arrival (= seq) order; cascades
  // re-place in the same order, so FIFO-within-a-tick survives the trip.
  if ((t >> kHorizonBits) != (ref_ >> kHorizonBits)) {
    overflow_.push_back(node_index);
    return;
  }
  // Smallest level whose aligned window contains both t and ref_; level
  // kLevels-1 always matches here because the horizon check above is
  // exactly its window condition.
  for (std::size_t level = 0; level < kLevels; ++level) {
    const std::size_t shift = kLevelBits * (level + 1);
    if ((t >> shift) == (ref_ >> shift)) {
      const std::size_t bucket = (t >> (kLevelBits * level)) & (kBuckets - 1);
      bucket_append(level, bucket, node_index);
      return;
    }
  }
}

void TimeIndex::cascade_overflow() {
  // Every wheel level is empty: re-anchor the reference at the aligned
  // horizon window of the earliest overflow entry and replay the ring in
  // order.  Entries inside the new window land in the wheel; the rest are
  // compacted in place, preserving their FIFO order for the next cascade.
  SimTime min_time = std::numeric_limits<SimTime>::max();
  for (const std::uint32_t index : overflow_) {
    min_time = std::min(min_time, nodes_[index].entry.time);
  }
  ref_ = min_time >> kHorizonBits << kHorizonBits;
  std::size_t kept = 0;
  for (const std::uint32_t index : overflow_) {
    const SimTime t = nodes_[index].entry.time;
    if ((t >> kHorizonBits) == (ref_ >> kHorizonBits)) {
      place(index);
    } else {
      overflow_[kept++] = index;
    }
  }
  overflow_.resize(kept);
}

bool TimeIndex::ensure_level0() {
  while (true) {
    if (occupancy_[0] != 0) return true;
    std::size_t level = 1;
    while (level < kLevels && occupancy_[level] == 0) ++level;
    if (level == kLevels) {
      if (overflow_.empty()) return false;
      cascade_overflow();
      continue;
    }
    // Advance the reference to the start of the earliest occupied window
    // of that level (bits above the window stay put; lower bits zero).
    // Safe: all levels below are empty, so no pending entry precedes it.
    const std::size_t bucket = static_cast<std::size_t>(std::countr_zero(occupancy_[level]));
    const std::size_t window_shift = kLevelBits * (level + 1);
    ref_ = (ref_ >> window_shift << window_shift) |
           (static_cast<SimTime>(bucket) << (kLevelBits * level));
    // Drain the bucket in FIFO order; each entry now shares a smaller
    // aligned window with ref_, so it re-places strictly below `level`.
    Bucket& b = buckets_[level][bucket];
    std::uint32_t node = b.head;
    b.head = b.tail = kNoNode;
    occupancy_[level] &= ~(std::uint64_t{1} << bucket);
    while (node != kNoNode) {
      const std::uint32_t next = nodes_[node].next;
      nodes_[node].next = kNoNode;
      place(node);
      node = next;
    }
  }
}

void TimeIndex::push(SimTime time, std::uint64_t seq, std::uint32_t slot) {
  ++size_;
  if (kind_ == EventSchedulerKind::kHeap) {
    heap_.push_back(TimeIndexEntry{time, seq, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return;
  }
  place(alloc_node(time, seq, slot));
}

bool TimeIndex::pop_min(TimeIndexEntry& out) {
  if (size_ == 0) return false;
  --size_;
  if (kind_ == EventSchedulerKind::kHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    out = heap_.back();
    heap_.pop_back();
    return true;
  }
  ensure_level0();
  const std::size_t bucket = static_cast<std::size_t>(std::countr_zero(occupancy_[0]));
  Bucket& b = buckets_[0][bucket];
  const std::uint32_t node = b.head;
  b.head = nodes_[node].next;
  if (b.head == kNoNode) {
    b.tail = kNoNode;
    occupancy_[0] &= ~(std::uint64_t{1} << bucket);
  }
  out = nodes_[node].entry;
  free_node(node);
  return true;
}

bool TimeIndex::peek_min_time(SimTime& out) const {
  if (size_ == 0) return false;
  if (kind_ == EventSchedulerKind::kHeap) {
    out = heap_.front().time;
    return true;
  }
  // Read-only on purpose: cascading here would advance ref_ past the
  // caller's push floor (the last *popped* time), and a later push between
  // the floor and the advanced reference would land "below" the wheel and
  // be ordered after later entries.  ref_ therefore only moves inside
  // pop_min, where the pop itself immediately raises the floor to at least
  // the new reference.  The min is still cheap to read: every level-0
  // entry precedes every level-1 entry and so on, so only the earliest
  // bucket of the lowest non-empty level (exact time at level 0, a FIFO
  // scan above it) or, failing that, the overflow ring needs looking at.
  for (std::size_t level = 0; level < kLevels; ++level) {
    if (occupancy_[level] == 0) continue;
    const std::size_t bucket = static_cast<std::size_t>(std::countr_zero(occupancy_[level]));
    if (level == 0) {
      // A level-0 bucket pins the full time: all its entries fire at the
      // reference window's base plus the bucket index.
      out = (ref_ >> kLevelBits << kLevelBits) | static_cast<SimTime>(bucket);
    } else {
      // A coarser bucket holds a FIFO mix of lower digits: scan it.  Other
      // buckets and levels hold strictly later entries, so the scan is
      // bounded by one bucket's population.
      SimTime min_time = std::numeric_limits<SimTime>::max();
      for (std::uint32_t node = buckets_[level][bucket].head; node != kNoNode;
           node = nodes_[node].next) {
        min_time = std::min(min_time, nodes_[node].entry.time);
      }
      out = min_time;
    }
    return true;
  }
  SimTime min_time = std::numeric_limits<SimTime>::max();
  for (const std::uint32_t index : overflow_) {
    min_time = std::min(min_time, nodes_[index].entry.time);
  }
  out = min_time;
  return true;
}

}  // namespace lr

#include "sim/network.hpp"

#include <stdexcept>

namespace lr {

Network::Network(const Graph& g, NetworkConfig config)
    : graph_(&g),
      config_(config),
      rng_(config.seed),
      handlers_(g.num_nodes()),
      link_up_(g.num_edges(), 1) {
  if (config_.min_delay == 0 || config_.min_delay > config_.max_delay) {
    throw std::invalid_argument("Network: require 0 < min_delay <= max_delay");
  }
}

void Network::send(NodeId from, NodeId to, std::vector<std::int64_t> payload) {
  const EdgeId e = graph_->edge_between(from, to);
  if (e == kNoEdge) {
    throw std::invalid_argument("Network::send: nodes are not adjacent");
  }
  ++messages_sent_;
  if (!link_up_[e]) {
    ++messages_dropped_;
    return;
  }
  if (config_.drop_probability > 0.0) {
    std::bernoulli_distribution drop(config_.drop_probability);
    if (drop(rng_)) {
      ++messages_dropped_;
      return;
    }
  }
  std::uniform_int_distribution<SimTime> delay(config_.min_delay, config_.max_delay);
  std::size_t copies = 1;
  if (config_.duplicate_probability > 0.0) {
    std::bernoulli_distribution duplicate(config_.duplicate_probability);
    if (duplicate(rng_)) copies = 2;
  }
  for (std::size_t i = 0; i < copies; ++i) {
    NetMessage message{from, to, payload};
    queue_.schedule_in(delay(rng_), [this, message = std::move(message)]() {
      ++messages_delivered_;
      if (handlers_[message.to]) handlers_[message.to](message);
    });
  }
}

}  // namespace lr

#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/sharded_loop.hpp"

namespace lr {

namespace {

void validate_delays(const NetworkConfig& config) {
  if (config.min_delay == 0 || config.min_delay > config.max_delay) {
    throw std::invalid_argument("Network: require 0 < min_delay <= max_delay");
  }
}

/// True iff `config` selects the sharded event loop.  min_delay >= 1
/// (validated above) is what makes sharding sound: same-tick deliveries on
/// distinct nodes cannot be causally related, so whole ticks parallelize.
bool wants_sharded(const NetworkConfig& config) {
  return config.sim_pool != nullptr || config.sim_threads != 1;
}

}  // namespace

Network::Network(const Graph& g, NetworkConfig config)
    : graph_(&g),
      csr_(nullptr),
      owned_csr_(std::in_place, g),
      config_(config),
      queue_(config.scheduler),
      rng_(config.seed),
      handlers_(g.num_nodes()),
      link_up_(g.num_edges(), 1) {
  validate_delays(config_);
  csr_ = &*owned_csr_;
  if (wants_sharded(config_)) {
    sharded_ = std::make_unique<ShardedEventLoop>(*this, config_.sim_threads, config_.scheduler,
                                                  config_.sim_pool);
  }
}

Network::Network(const Graph& g, NetworkConfig config, const CsrGraph& frozen)
    : graph_(&g),
      csr_(&frozen),
      config_(config),
      queue_(config.scheduler),
      rng_(config.seed),
      handlers_(g.num_nodes()),
      link_up_(g.num_edges(), 1) {
  validate_delays(config_);
  if (frozen.num_nodes() != g.num_nodes() || frozen.num_edges() != g.num_edges()) {
    throw std::invalid_argument("Network: frozen CSR snapshot does not match the graph");
  }
  if (wants_sharded(config_)) {
    sharded_ = std::make_unique<ShardedEventLoop>(*this, config_.sim_threads, config_.scheduler,
                                                  config_.sim_pool);
  }
}

Network::~Network() = default;

SimTime Network::now() const noexcept {
  return sharded_ != nullptr ? sharded_->now() : queue_.now();
}

std::uint64_t Network::run_until_idle(std::uint64_t max_events) {
  if (sharded_ != nullptr) return sharded_->run_until_idle(max_events);
  return queue_.run_until_idle(max_events);
}

std::size_t Network::message_pool_slots() const noexcept {
  return sharded_ != nullptr ? sharded_->message_pool_slots() : pool_.slots();
}

void Network::deliver(std::uint32_t index) {
  ++messages_delivered_;
  const NetMessage& message = pool_[index];
  if (handlers_[message.to]) handlers_[message.to](message);
  pool_[index].payload.clear();  // keeps capacity for the next send
  pool_.release(index);
}

std::size_t Network::plan_send(NodeId from, NodeId to, SimTime (&delays)[2]) {
  const auto position = csr_->position_of(from, to);
  if (!position) {
    throw std::invalid_argument("Network::send: nodes are not adjacent");
  }
  const EdgeId e = csr_->edge_at(*position);
  ++messages_sent_;
  if (!link_up_[e]) {
    ++messages_dropped_;
    return 0;
  }
  if (config_.drop_probability > 0.0) {
    std::bernoulli_distribution drop(config_.drop_probability);
    if (drop(rng_)) {
      ++messages_dropped_;
      return 0;
    }
  }
  std::uniform_int_distribution<SimTime> delay(config_.min_delay, config_.max_delay);
  std::size_t copies = 1;
  if (config_.duplicate_probability > 0.0) {
    std::bernoulli_distribution duplicate(config_.duplicate_probability);
    if (duplicate(rng_)) copies = 2;
  }
  for (std::size_t i = 0; i < copies; ++i) delays[i] = delay(rng_);
  return copies;
}

void Network::send(NodeId from, NodeId to, std::span<const std::int64_t> payload) {
  if (sharded_ != nullptr) {
    sharded_->submit(from, to, payload);
    return;
  }
  SimTime delays[2];
  const std::size_t copies = plan_send(from, to, delays);
  for (std::size_t i = 0; i < copies; ++i) {
    const std::uint32_t index = pool_.acquire();
    NetMessage& message = pool_[index];
    message.from = from;
    message.to = to;
    message.payload.assign(payload.begin(), payload.end());
    queue_.schedule_in(delays[i], [this, index] { deliver(index); });
  }
}

}  // namespace lr

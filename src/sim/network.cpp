#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace lr {

namespace {

void validate_delays(const NetworkConfig& config) {
  if (config.min_delay == 0 || config.min_delay > config.max_delay) {
    throw std::invalid_argument("Network: require 0 < min_delay <= max_delay");
  }
}

}  // namespace

Network::Network(const Graph& g, NetworkConfig config)
    : graph_(&g),
      csr_(nullptr),
      owned_csr_(std::in_place, g),
      config_(config),
      rng_(config.seed),
      handlers_(g.num_nodes()),
      link_up_(g.num_edges(), 1) {
  validate_delays(config_);
  csr_ = &*owned_csr_;
}

Network::Network(const Graph& g, NetworkConfig config, const CsrGraph& frozen)
    : graph_(&g),
      csr_(&frozen),
      config_(config),
      rng_(config.seed),
      handlers_(g.num_nodes()),
      link_up_(g.num_edges(), 1) {
  validate_delays(config_);
  if (frozen.num_nodes() != g.num_nodes() || frozen.num_edges() != g.num_edges()) {
    throw std::invalid_argument("Network: frozen CSR snapshot does not match the graph");
  }
}

void Network::deliver(std::uint32_t index) {
  ++messages_delivered_;
  const NetMessage& message = pool_[index];
  if (handlers_[message.to]) handlers_[message.to](message);
  pool_[index].payload.clear();  // keeps capacity for the next send
  pool_.release(index);
}

void Network::send(NodeId from, NodeId to, std::span<const std::int64_t> payload) {
  const auto position = csr_->position_of(from, to);
  if (!position) {
    throw std::invalid_argument("Network::send: nodes are not adjacent");
  }
  const EdgeId e = csr_->edge_at(*position);
  ++messages_sent_;
  if (!link_up_[e]) {
    ++messages_dropped_;
    return;
  }
  if (config_.drop_probability > 0.0) {
    std::bernoulli_distribution drop(config_.drop_probability);
    if (drop(rng_)) {
      ++messages_dropped_;
      return;
    }
  }
  std::uniform_int_distribution<SimTime> delay(config_.min_delay, config_.max_delay);
  std::size_t copies = 1;
  if (config_.duplicate_probability > 0.0) {
    std::bernoulli_distribution duplicate(config_.duplicate_probability);
    if (duplicate(rng_)) copies = 2;
  }
  for (std::size_t i = 0; i < copies; ++i) {
    const std::uint32_t index = pool_.acquire();
    NetMessage& message = pool_[index];
    message.from = from;
    message.to = to;
    message.payload.assign(payload.begin(), payload.end());
    queue_.schedule_in(delay(rng_), [this, index] { deliver(index); });
  }
}

}  // namespace lr

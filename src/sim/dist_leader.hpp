#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "sim/network.hpp"

/// \file dist_leader.hpp
/// Distributed leader election by link reversal over the simulated
/// asynchronous network — the message-passing counterpart of
/// routing/leader_election.hpp.
///
/// Protocol sketch (a simplified variant of the Welch–Walter / Ingram et
/// al. leader-election-by-link-reversal family, adapted to our height
/// substrate):
///
///  * Every node u keeps a *candidate* c_u (initially itself) and a
///    partial-reversal height; the DAG is conceptually oriented towards
///    the current best candidate.
///  * Nodes gossip CANDIDATE(c, height) messages.  A node adopting a
///    better candidate (higher id) resets its height below its neighbors'
///    so the DAG re-orients towards the better candidate's region.
///  * When candidates are equal, ordinary partial-reversal height updates
///    fire at local sinks that are not the candidate itself, routing
///    everyone towards the leader.
///
/// On a connected component the maximum id wins everywhere (gossip
/// convergence), after which the height mechanics make the leader the
/// unique sink.  We verify both: candidate agreement and the sink
/// certificate.

namespace lr {

/// Message-passing leader election over the simulated network; see the
/// file comment for the protocol sketch.
class DistLeaderElection {
 public:
  /// Builds the election over `topology` (which must outlive this object)
  /// and installs every node's delivery handler on `network`.
  DistLeaderElection(const Graph& topology, Network& network);

  /// Starts the election: every node announces its initial candidate.
  void start();

  /// The candidate node `u` currently believes in.
  NodeId candidate(NodeId u) const { return candidate_[u]; }

  /// True iff all nodes agree on one candidate (call when the network is
  /// idle); returns the agreed leader if so.
  std::optional<NodeId> agreed_leader() const;

  /// True iff, per the current heights, the agreed leader is the unique
  /// sink — the local leadership certificate.
  bool leader_is_unique_sink() const;

  /// Times any node adopted a better candidate (summed over the per-node
  /// counters — kept per node so handlers running on different shards of
  /// the sharded event loop never share a counter).
  std::uint64_t candidate_adoptions() const;
  /// Ordinary partial-reversal height steps fired (summed per node, for
  /// the same reason).
  std::uint64_t height_steps() const;

 private:
  struct View {
    NodeId candidate = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
  };

  bool height_below_all_neighbors(NodeId u) const;
  void maybe_act(NodeId u);
  void broadcast(NodeId u);
  void on_message(const NetMessage& message);
  std::size_t view_slot(NodeId u, NodeId neighbor) const;

  const Graph* graph_;
  Network* network_;
  // Flat CSR snapshot of the topology: every hot loop (candidate adoption,
  // sink test, PR update, broadcast, view refresh) iterates its contiguous
  // id arrays, and the view slots below are addressed by CSR position.
  CsrGraph csr_;
  std::vector<NodeId> candidate_;
  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
  std::vector<View> views_;  // neighbor views, indexed by CSR position
  // Per-node action counters (see the accessor comments).
  std::vector<std::uint64_t> adoptions_;
  std::vector<std::uint64_t> height_steps_;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "sim/network.hpp"

/// \file dist_mutex.hpp
/// Distributed mutual exclusion by link reversal over the simulated
/// network — a simplified Walter–Welch–Vaidya-style token algorithm (the
/// third application from the paper's abstract, in its message-passing
/// form).
///
/// Mechanics:
///  * Every node has a partial-reversal height; the token holder is always
///    the global height minimum, so the height-induced DAG is
///    destination-oriented towards the token.
///  * REQUEST(origin, path) messages route greedily *downhill* using local
///    height views.  A non-holder node with a pending request and no
///    downhill neighbor performs a request-driven partial-reversal step
///    (raises itself) and retries — reversals happen exactly where requests
///    are stuck, the algorithm's signature property.
///  * The holder queues requests FIFO; on release it sends the TOKEN back
///    along the recorded request path, and the recipient drops its height
///    just below the sender's, becoming the new global minimum.
///  * Heights can *decrease* on token receipt, so view updates carry
///    per-sender sequence numbers instead of relying on height
///    monotonicity.
///
/// Safety (at most one holder ever) and liveness (every request eventually
/// granted) are asserted by the tests.

namespace lr {

/// Message-passing token-based mutual exclusion over the simulated
/// network; see the file comment for the mechanics.
class DistMutex {
 public:
  /// Builds the service over `topology` (which must outlive this object),
  /// seats the token at `initial_holder`, and installs every node's
  /// delivery handler on `network`.
  DistMutex(const Graph& topology, NodeId initial_holder, Network& network);

  /// Node u asks for the critical section.  No-op if u already holds the
  /// token or has an outstanding request.  Drive the network afterwards.
  void request(NodeId u);

  /// The current holder finishes its critical section; if requests are
  /// queued, the token is granted to the oldest (drive the network to let
  /// it travel).  No-op while the token is in flight.
  void release();

  /// The node currently holding the token, or nullopt while it is in
  /// flight between holder and grantee.
  std::optional<NodeId> holder() const;

  /// True iff u may enter its critical section now.
  bool may_enter(NodeId u) const { return is_holder_[u] != 0; }

  /// Requests waiting at the holder, in grant order (summed over the
  /// per-node queues; only the holder's can be non-empty at quiescence).
  std::size_t queued_requests() const;

  /// Token hand-offs completed so far (summed over the per-node counters —
  /// kept per node so handlers running on different shards of the sharded
  /// event loop never share a counter; same for the other per-node state
  /// below).
  std::uint64_t grants() const;
  /// Request-driven partial-reversal steps fired so far (summed per node).
  std::uint64_t reversal_steps() const;

 private:
  enum MessageKind : std::int64_t { kHeight = 0, kRequest = 1, kToken = 2 };

  struct QueuedRequest {
    NodeId origin;
    std::vector<NodeId> path;  ///< origin .. holder
  };

  void on_message(const NetMessage& message);
  void handle_height(NodeId u, const NetMessage& message);
  void handle_request(NodeId u, const NetMessage& message);
  void handle_token(NodeId u, const NetMessage& message);
  void try_forward_pending(NodeId u);
  void forward_request(NodeId u, QueuedRequest request);
  std::optional<NodeId> downhill_neighbor(NodeId u) const;
  void reversal_step(NodeId u);
  void broadcast_height(NodeId u);
  std::size_t view_slot(NodeId u, NodeId neighbor) const;

  const Graph* graph_;
  Network* network_;
  // Flat CSR snapshot of the topology: the event-loop hot path (downhill
  // scan, request-driven reversal, broadcast, view refresh) iterates its
  // contiguous id arrays, and the view slots below are addressed by CSR
  // position.
  CsrGraph csr_;

  // Sharded-loop discipline: every member a delivery handler touches is
  // per-node state owned by the receiving node (its shard), so handlers on
  // different shards never write the same element.  The token-holder fact
  // is therefore a per-node flag (set by the grantee's handle_token, only
  // ever for itself; cleared by the main-thread release()) instead of one
  // shared NodeId.
  std::vector<std::uint8_t> is_holder_;  ///< all zero while in flight

  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
  std::vector<std::int64_t> seq_;

  struct View {
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t seq = -1;
  };
  std::vector<View> views_;  // neighbor views, indexed by CSR position

  // Reused per-node payload buffers for REQUEST/TOKEN assembly:
  // Network::send copies the words into its message pool before returning,
  // so one scratch vector per node serves every send without steady-state
  // allocation (per node, not shared, for the sharding discipline above).
  std::vector<std::vector<std::int64_t>> payload_scratch_;

  std::vector<std::deque<QueuedRequest>> grant_queue_;  // at the holder
  std::vector<std::deque<QueuedRequest>> pending_;  // stuck at intermediate nodes
  // Origin has an unserved request.  uint8_t, not vector<bool>: packed
  // bits would let two shards' byte-level writes race on neighbors.
  std::vector<std::uint8_t> outstanding_;

  std::vector<std::uint64_t> grants_;          // per-node grant counters
  std::vector<std::uint64_t> reversal_steps_;  // per-node reversal counters
};

}  // namespace lr

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

/// \file slot_pool.hpp
/// The slab/freelist pool shared by the sim layer's hot-path allocators
/// (the event queue's callback slots, the network's in-flight messages).
///
/// One invariant, held once: slots are drawn from a freelist over slabs
/// that are never returned, so the pool only ever grows at a new
/// high-water mark of concurrently live slots and steady-state
/// acquire/release cycles perform no heap allocation.  `std::deque`
/// storage keeps slot addresses stable across growth, which is what makes
/// reentrant acquisition (an event handler scheduling new events while its
/// own slot is live) safe for every client.

namespace lr {

/// A freelist pool of `T` slots addressed by stable `std::uint32_t`
/// indices.  `T` must be default-constructible; released slots keep their
/// `T` (and therefore any capacity it owns, e.g. a payload vector's) for
/// the next acquirer — clients reset whatever state must not leak across
/// reuse before or after release.
template <typename T>
class SlotPool {
 public:
  /// Sentinel index ("no slot").
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Pops a slot off the freelist, growing the pool by one
  /// default-constructed slot when the freelist is empty (a new high-water
  /// mark — steady state never re-enters the grow path).
  std::uint32_t acquire() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t index = free_head_;
      free_head_ = entries_[index].next_free;
      entries_[index].next_free = kNoSlot;
      --free_count_;
      return index;
    }
    entries_.emplace_back();
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  /// Returns `index` to the freelist.  The slot's `T` is not destroyed or
  /// reset — it is recycled as-is for the next acquire().
  void release(std::uint32_t index) {
    entries_[index].next_free = free_head_;
    free_head_ = index;
    ++free_count_;
  }

  /// The slot at `index`; the reference stays valid across acquire()
  /// (deque slabs never move).
  T& operator[](std::uint32_t index) { return entries_[index].value; }
  /// \copydoc operator[]
  const T& operator[](std::uint32_t index) const { return entries_[index].value; }

  /// Slots ever allocated (the high-water mark of concurrently live
  /// slots); stable across steady-state acquire/release cycles.
  std::size_t slots() const noexcept { return entries_.size(); }

  /// Slots currently on the freelist (== slots() when fully idle).
  std::size_t free_slots() const noexcept { return free_count_; }

 private:
  /// One pooled slot: the payload plus its intrusive freelist link.
  struct Entry {
    T value{};
    std::uint32_t next_free = kNoSlot;
  };

  std::deque<Entry> entries_;          ///< slab storage; addresses stable
  std::uint32_t free_head_ = kNoSlot;  ///< freelist head
  std::size_t free_count_ = 0;         ///< freelist length
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"
#include "sim/network.hpp"

/// \file dist_lr.hpp
/// Distributed link reversal over the simulated asynchronous network —
/// the deployment the algorithms were designed for (routing in networks
/// "with frequently changing topology", Gafni–Bertsekas).
///
/// Protocol: height-based, TORA-style.  Every node keeps its own height
/// (a pair for Full Reversal, a triple for Partial Reversal) plus its last
/// received view of each neighbor's height.  The edge {u, v} is directed
/// from the higher height to the lower, so the *global* orientation is
/// acyclic at every instant by total order, and each node can evaluate its
/// sink condition purely locally.  When a node's view says it is a sink, it
/// applies the GB height update and broadcasts UPDATE(height) to its
/// neighbors.
///
/// Heights increase monotonically, so stale (re-ordered) UPDATEs are
/// filtered by a "newer wins" guard; when the event queue drains, all
/// views agree with the true heights and no non-destination sink remains,
/// i.e. the derived orientation is destination-oriented.  Experiment E7
/// measures message complexity and convergence time under delay and churn
/// sweeps.

namespace lr {

/// Which Gafni–Bertsekas height update a DistLinkReversal node applies.
enum class ReversalRule : std::uint8_t {
  kFull,     ///< pair heights, a := max(neighbors) + 1
  kPartial,  ///< triple heights, GB partial-reversal update
};

/// The height-based distributed link-reversal protocol; see the file
/// comment.
class DistLinkReversal {
 public:
  /// Heights are initialized from the instance's initial orientation (a
  /// topological-level assignment), and each node starts with an exact view
  /// of its neighbors' initial heights.  The network must outlive this
  /// object and be built over `instance.graph`.
  DistLinkReversal(const Instance& instance, ReversalRule rule, Network& network);

  /// Same, but borrows `frozen` — a CSR snapshot of `instance.graph` (e.g.
  /// the sweep cache's) — instead of building one per run.  `frozen` must
  /// outlive this object and match the instance's node and edge counts
  /// (else std::invalid_argument); only its adjacency arrays are read, so
  /// its initial orientation need not match the instance's.
  DistLinkReversal(const Instance& instance, ReversalRule rule, Network& network,
                   const CsrGraph& frozen);

  /// Kicks off the protocol: every node evaluates its sink condition once.
  /// Drive the network (network.run_until_idle()) afterwards.
  void start();

  /// Re-announces both endpoints' heights over a restored link.  Call after
  /// Network::set_link_up(e, true) so the endpoints re-synchronize views
  /// that went stale while the link was down.
  void notify_link_restored(EdgeId e);

  /// Anti-entropy round (TORA's periodic refresh, simplified): every node
  /// re-broadcasts its current height.  Because stale views are the *only*
  /// effect of lost messages, a resync round after quiescence repairs any
  /// divergence; repeat until converged.  Returns messages sent.
  std::uint64_t resync_round();

  /// Drives the protocol to convergence under message loss: start, drain,
  /// then resync+drain until converged or `max_rounds` exhausted.  Returns
  /// the number of resync rounds used, or std::nullopt if still unconverged
  /// (e.g. 100% loss).
  std::optional<std::size_t> run_with_resync(std::size_t max_rounds = 64);

  /// The node's true height as a lexicographic triple (a, b, id); for the
  /// full-reversal rule b is fixed at 0.
  std::tuple<std::int64_t, std::int64_t, NodeId> height(NodeId u) const {
    return {a_[u], b_[u], u};
  }

  /// Orientation derived from the *true* heights (higher endpoint -> lower).
  /// Acyclic by construction at any time.
  Orientation derived_orientation() const;

  /// True iff the derived orientation is destination-oriented (call once
  /// the network is idle).
  bool converged() const;

  /// The destination node D.
  NodeId destination() const noexcept { return destination_; }
  /// Reversal steps performed by all nodes so far (the sum of the per-node
  /// counters — kept per node rather than global so handlers running on
  /// different shards of the sharded event loop never share a counter).
  std::uint64_t total_steps() const;
  /// Reversal steps performed by node `u` so far.
  std::uint64_t steps(NodeId u) const { return steps_[u]; }

  /// The neighbor u would forward a data packet to: the one with the
  /// lexicographically smallest *viewed* height, provided that height is
  /// below u's own (i.e. u believes the link points away from itself).
  /// nullopt if u believes itself a sink.  This is the data-plane query
  /// used by DistRouter.
  std::optional<NodeId> best_out_neighbor_view(NodeId u) const;

 private:
  DistLinkReversal(const Instance& instance, ReversalRule rule, Network& network,
                   const CsrGraph* frozen);

  bool locally_sink(NodeId u) const;
  void maybe_step(NodeId u);
  void broadcast_height(NodeId u);
  void on_message(const NetMessage& message);

  const Graph* graph_;
  Network* network_;
  ReversalRule rule_;
  NodeId destination_;

  // Flat CSR snapshot of the topology: the event-loop hot path (sink test,
  // height update, broadcast, view refresh on every delivered message)
  // iterates its contiguous id arrays, and neighbor-view slots below are
  // addressed by CSR position.  Borrowed from the sweep cache when a frozen
  // snapshot is supplied, owned otherwise.
  const CsrGraph* csr_ = nullptr;
  std::optional<CsrGraph> owned_csr_;

  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
  // Views of neighbor heights, indexed by CSR adjacency position.
  std::vector<std::int64_t> view_a_;
  std::vector<std::int64_t> view_b_;

  std::vector<std::uint64_t> steps_;
};

}  // namespace lr

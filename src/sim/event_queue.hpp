#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/slot_pool.hpp"
#include "sim/time_index.hpp"

/// \file event_queue.hpp
/// A minimal discrete-event simulation core: a time-ordered queue of
/// callbacks with deterministic FIFO tie-breaking, backed by a slab/pool
/// allocator so steady-state operation performs no heap allocation.
///
/// The paper's algorithms are asynchronous-model algorithms; the DES is the
/// substitute for a physical ad-hoc network (docs/ARCHITECTURE.md, sim
/// layer).  Determinism matters: with a fixed seed, every simulated
/// experiment replays exactly — the scenario runner's sweeps rely on it.
///
/// Memory model (docs/PERFORMANCE.md): every scheduled callback lives in a
/// fixed-size *slot* drawn from a freelist over slabs that are never
/// returned; the time-ordered index is a pluggable `TimeIndex`
/// (time_index.hpp) — a binary heap of POD entries by default, or a
/// hierarchical timing wheel behind the `EventSchedulerKind::kWheel` knob,
/// with identical pop order either way.  Once the pool and index have
/// grown to a simulation's high-water mark, scheduling and running events
/// allocates nothing — the preallocated-pool discipline line-rate event
/// systems (NDN-DPDK-style) are built on, which keeps message-heavy
/// sweeps engine-bound instead of allocator-bound.

namespace lr {

/// The pooled discrete-event queue.  Callbacks are any callables whose
/// captured state fits `kInlineEventBytes`; they are stored in place inside
/// pool slots, never on the general heap.
class EventQueue {
 public:
  /// Upper bound on a scheduled callable's size.  Protocol events capture a
  /// pointer plus a couple of integers; 64 bytes leaves generous headroom.
  /// Exceeding it is a compile error — shrink the capture (e.g. capture an
  /// index into externally owned state) rather than raising the bound.
  static constexpr std::size_t kInlineEventBytes = 64;

  /// An empty queue at time 0 with an empty pool.  `scheduler` selects the
  /// time-index backend (heap or timing wheel, time_index.hpp); event
  /// execution order is byte-identical across backends.
  explicit EventQueue(EventSchedulerKind scheduler = EventSchedulerKind::kHeap)
      : index_(scheduler) {}

  /// Slots hold type-erased live callables whose teardown only the
  /// destructor knows how to run; a defaulted copy would duplicate them
  /// bitwise and a defaulted move would skip that teardown on the
  /// assigned-to queue, so the type is pinned in place.
  EventQueue(const EventQueue&) = delete;
  /// \copydoc EventQueue(const EventQueue&)
  EventQueue& operator=(const EventQueue&) = delete;
  /// \copydoc EventQueue(const EventQueue&)
  EventQueue(EventQueue&&) = delete;
  /// \copydoc EventQueue(const EventQueue&)
  EventQueue& operator=(EventQueue&&) = delete;

  /// Destroys all still-pending callbacks.
  ~EventQueue();

  /// Schedules `fn` at absolute time `at` (must be >= now(), else
  /// std::invalid_argument).  `fn`'s captured state must fit
  /// `kInlineEventBytes` (enforced at compile time); it is moved into a
  /// pool slot, so no heap allocation happens once the pool is warm.
  template <typename F>
  void schedule_at(SimTime at, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineEventBytes,
                  "EventQueue callback capture exceeds kInlineEventBytes; "
                  "capture an index/pointer into externally owned state");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "EventQueue callback over-aligned beyond max_align_t");
    check_schedulable(at);
    const std::uint32_t index = pool_.acquire();
    Slot& slot = pool_[index];
    try {
      ::new (static_cast<void*>(slot.storage)) Fn(std::forward<F>(fn));
      slot.invoke = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      slot.destroy = [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); };
      push_entry(at, index);
    } catch (...) {
      release_slot(index);
      throw;
    }
  }

  /// Schedules `fn` `delay` ticks from now.
  template <typename F>
  void schedule_in(SimTime delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// True iff no event is pending.
  bool empty() const noexcept { return index_.empty(); }

  /// Number of pending events.
  std::size_t pending() const noexcept { return index_.size(); }

  /// The configured time-index backend.
  EventSchedulerKind scheduler() const noexcept { return index_.kind(); }

  /// Pops and runs the earliest event; returns false when the queue is
  /// empty.  Events scheduled at the same tick run in scheduling order.
  bool run_one();

  /// Runs events until the queue drains or `max_events` have run; returns
  /// the number of events executed.
  std::uint64_t run_until_idle(std::uint64_t max_events = 50'000'000);

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Pool slots ever allocated (the high-water mark of concurrently
  /// pending events).  Stable across steady-state schedule/run cycles —
  /// the property the pool's unit tests pin down.
  std::size_t pool_slots() const noexcept { return pool_.slots(); }

  /// Pool slots currently on the freelist (== pool_slots() when idle).
  std::size_t free_slots() const noexcept { return pool_.free_slots(); }

 private:
  /// One pooled event: in-place callable storage plus type-erased
  /// invoke/destroy hooks (null when the slot is free).
  struct Slot {
    alignas(alignof(std::max_align_t)) unsigned char storage[kInlineEventBytes];
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
  };

  void check_schedulable(SimTime at) const;
  void release_slot(std::uint32_t index);
  void push_entry(SimTime at, std::uint32_t index);

  SlotPool<Slot> pool_;  ///< event slab pool (slot_pool.hpp)
  TimeIndex index_;      ///< pending entries in (time, seq) order
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

/// \file event_queue.hpp
/// A minimal discrete-event simulation core: a time-ordered queue of
/// callbacks with deterministic FIFO tie-breaking.
///
/// The paper's algorithms are asynchronous-model algorithms; the DES is the
/// substitute for a physical ad-hoc network (docs/ARCHITECTURE.md, sim
/// layer).  Determinism matters: with a fixed seed, every simulated
/// experiment replays exactly — the scenario runner's sweeps rely on it.

namespace lr {

/// Simulated time in abstract ticks.
using SimTime = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` `delay` ticks from now.
  void schedule_in(SimTime delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Pops and runs the earliest event; returns false when the queue is
  /// empty.  Events scheduled at the same tick run in scheduling order.
  bool run_one();

  /// Runs events until the queue drains or `max_events` have run; returns
  /// the number of events executed.
  std::uint64_t run_until_idle(std::uint64_t max_events = 50'000'000);

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie break
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace lr

#include "sim/dist_mutex.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <tuple>

namespace lr {

DistMutex::DistMutex(const Graph& topology, NodeId initial_holder, Network& network)
    : graph_(&topology), network_(&network), csr_(topology) {
  const std::size_t n = graph_->num_nodes();
  if (initial_holder >= n) {
    throw std::invalid_argument("DistMutex: initial holder out of range");
  }
  is_holder_.assign(n, 0);
  is_holder_[initial_holder] = 1;
  a_.assign(n, 0);
  b_.resize(n);
  for (NodeId u = 0; u < n; ++u) b_[u] = static_cast<std::int64_t>(u);
  b_[initial_holder] = -1;  // the holder is the global height minimum
  seq_.assign(n, 0);

  views_.resize(2 * csr_.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    const CsrPos end = csr_.adjacency_end(u);
    for (CsrPos p = csr_.adjacency_begin(u); p < end; ++p) {
      const NodeId v = csr_.neighbor_at(p);
      views_[p] = View{a_[v], b_[v], 0};
    }
  }
  payload_scratch_.resize(n);
  grant_queue_.resize(n);
  pending_.resize(n);
  outstanding_.assign(n, 0);
  grants_.assign(n, 0);
  reversal_steps_.assign(n, 0);

  for (NodeId u = 0; u < n; ++u) {
    network_->set_handler(u, [this](const NetMessage& message) { on_message(message); });
  }
}

std::optional<NodeId> DistMutex::holder() const {
  for (NodeId u = 0; u < is_holder_.size(); ++u) {
    if (is_holder_[u] != 0) return u;
  }
  return std::nullopt;
}

std::size_t DistMutex::queued_requests() const {
  std::size_t total = 0;
  for (const auto& queue : grant_queue_) total += queue.size();
  return total;
}

std::uint64_t DistMutex::grants() const {
  std::uint64_t total = 0;
  for (const std::uint64_t g : grants_) total += g;
  return total;
}

std::uint64_t DistMutex::reversal_steps() const {
  std::uint64_t total = 0;
  for (const std::uint64_t s : reversal_steps_) total += s;
  return total;
}

std::size_t DistMutex::view_slot(NodeId u, NodeId neighbor) const {
  // Precondition: messages only arrive from topology neighbors, so the
  // position always exists.
  return *csr_.position_of(u, neighbor);
}

std::optional<NodeId> DistMutex::downhill_neighbor(NodeId u) const {
  const auto own = std::tuple(a_[u], b_[u], u);
  std::optional<NodeId> best;
  std::tuple<std::int64_t, std::int64_t, NodeId> best_height{};
  const CsrPos end = csr_.adjacency_end(u);
  for (CsrPos p = csr_.adjacency_begin(u); p < end; ++p) {
    const View& view = views_[p];
    const NodeId v = csr_.neighbor_at(p);
    const auto height = std::tuple(view.a, view.b, v);
    if (height < own && (!best || height < best_height)) {
      best = v;
      best_height = height;
    }
  }
  return best;
}

void DistMutex::reversal_step(NodeId u) {
  // Request-driven partial reversal: raise u above its lowest neighbors.
  const CsrPos begin = csr_.adjacency_begin(u);
  const CsrPos end = csr_.adjacency_end(u);
  std::int64_t min_a = std::numeric_limits<std::int64_t>::max();
  for (CsrPos p = begin; p < end; ++p) min_a = std::min(min_a, views_[p].a);
  const std::int64_t new_a = min_a + 1;
  std::int64_t min_b = std::numeric_limits<std::int64_t>::max();
  bool tie = false;
  for (CsrPos p = begin; p < end; ++p) {
    if (views_[p].a == new_a) {
      tie = true;
      min_b = std::min(min_b, views_[p].b);
    }
  }
  a_[u] = new_a;
  if (tie) b_[u] = min_b - 1;
  ++reversal_steps_[u];
  broadcast_height(u);
}

void DistMutex::broadcast_height(NodeId u) {
  ++seq_[u];
  for (const NodeId v : csr_.neighbors(u)) {
    network_->send(u, v, {kHeight, a_[u], b_[u], seq_[u]});
  }
}

void DistMutex::request(NodeId u) {
  if (u >= graph_->num_nodes()) {
    throw std::invalid_argument("DistMutex::request: node out of range");
  }
  if (is_holder_[u] != 0 || outstanding_[u] != 0) return;
  outstanding_[u] = 1;
  pending_[u].push_back(QueuedRequest{u, {u}});
  try_forward_pending(u);
}

void DistMutex::try_forward_pending(NodeId u) {
  while (!pending_[u].empty()) {
    if (is_holder_[u] != 0) {
      grant_queue_[u].push_back(std::move(pending_[u].front()));
      pending_[u].pop_front();
      continue;
    }
    const auto next = downhill_neighbor(u);
    if (!next) {
      if (csr_.degree(u) == 0) return;  // isolated: nothing to do
      // Stuck local minimum with work to do: reverse and retry (a step
      // always produces a downhill neighbor).
      reversal_step(u);
      continue;
    }
    forward_request(u, std::move(pending_[u].front()));
    pending_[u].pop_front();
  }
}

void DistMutex::forward_request(NodeId u, QueuedRequest request) {
  const auto next = downhill_neighbor(u);
  std::vector<std::int64_t>& scratch = payload_scratch_[u];
  scratch.clear();
  scratch.push_back(kRequest);
  scratch.push_back(static_cast<std::int64_t>(request.origin));
  for (const NodeId hop : request.path) {
    scratch.push_back(static_cast<std::int64_t>(hop));
  }
  network_->send(u, *next, scratch);
}

void DistMutex::release() {
  const auto current = holder();
  if (!current) return;  // token in flight: nothing to release
  const NodeId h = *current;
  if (grant_queue_[h].empty()) return;
  QueuedRequest request = std::move(grant_queue_[h].front());
  grant_queue_[h].pop_front();
  if (request.origin == h) {  // stale self-request; try the next one
    release();
    return;
  }
  // Complete the recorded path with the holder itself, then send the token
  // back along it.
  if (request.path.empty() || request.path.back() != h) request.path.push_back(h);
  is_holder_[h] = 0;
  std::vector<std::int64_t>& scratch = payload_scratch_[h];
  scratch.clear();
  scratch.push_back(kToken);
  scratch.push_back(a_[h]);
  scratch.push_back(b_[h]);
  // Remaining path: everything except the holder.
  for (std::size_t i = 0; i + 1 < request.path.size(); ++i) {
    scratch.push_back(static_cast<std::int64_t>(request.path[i]));
  }
  const NodeId next_hop = request.path[request.path.size() - 2];
  network_->send(h, next_hop, scratch);

  // Queued paths end at h, which is no longer the holder: re-inject them as
  // pending requests at h so they re-route towards the token's new home
  // (extending their recorded paths hop by hop).
  while (!grant_queue_[h].empty()) {
    pending_[h].push_back(std::move(grant_queue_[h].front()));
    grant_queue_[h].pop_front();
  }
  try_forward_pending(h);
}

void DistMutex::on_message(const NetMessage& message) {
  switch (message.payload.at(0)) {
    case kHeight:
      handle_height(message.to, message);
      break;
    case kRequest:
      handle_request(message.to, message);
      break;
    case kToken:
      handle_token(message.to, message);
      break;
    default:
      break;  // unknown kind: ignore
  }
}

void DistMutex::handle_height(NodeId u, const NetMessage& message) {
  View& view = views_[view_slot(u, message.from)];
  if (message.payload.at(3) <= view.seq) return;  // stale or duplicate
  view.a = message.payload.at(1);
  view.b = message.payload.at(2);
  view.seq = message.payload.at(3);
  try_forward_pending(u);
}

void DistMutex::handle_request(NodeId u, const NetMessage& message) {
  QueuedRequest request;
  request.origin = static_cast<NodeId>(message.payload.at(1));
  for (std::size_t i = 2; i < message.payload.size(); ++i) {
    request.path.push_back(static_cast<NodeId>(message.payload[i]));
  }
  // Loop erasure: while the token is in flight a request can wander through
  // stale-view regions and revisit nodes.  Truncating back to the first
  // visit keeps every recorded path simple (<= n hops), which bounds both
  // the token's return trip and the message sizes.
  const auto revisit = std::find(request.path.begin(), request.path.end(), u);
  request.path.erase(revisit, request.path.end());
  request.path.push_back(u);
  pending_[u].push_back(std::move(request));
  try_forward_pending(u);
}

void DistMutex::handle_token(NodeId u, const NetMessage& message) {
  std::vector<NodeId> remaining;
  for (std::size_t i = 3; i < message.payload.size(); ++i) {
    remaining.push_back(static_cast<NodeId>(message.payload[i]));
  }
  if (remaining.empty() || remaining.back() != u) return;  // malformed: drop

  if (remaining.size() == 1) {
    // u is the grantee: drop just below the granting holder's height,
    // becoming the new global minimum.  Only u ever sets its own flag (the
    // old holder's was cleared by release() before the token left), so the
    // write stays inside u's shard.
    a_[u] = message.payload.at(1);
    b_[u] = message.payload.at(2) - 1;
    is_holder_[u] = 1;
    outstanding_[u] = 0;
    ++grants_[u];
    broadcast_height(u);
    try_forward_pending(u);  // locally stuck requests go to the grant queue
    return;
  }
  // Forward the token one hop further back along the request path.
  remaining.pop_back();
  std::vector<std::int64_t>& scratch = payload_scratch_[u];
  scratch.clear();
  scratch.push_back(kToken);
  scratch.push_back(message.payload.at(1));
  scratch.push_back(message.payload.at(2));
  for (const NodeId hop : remaining) {
    scratch.push_back(static_cast<std::int64_t>(hop));
  }
  network_->send(u, remaining.back(), scratch);
}

}  // namespace lr

#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <vector>

#include "runner/thread_pool.hpp"
#include "sim/network.hpp"
#include "sim/slot_pool.hpp"
#include "sim/spsc_ring.hpp"
#include "sim/time_index.hpp"

/// \file sharded_loop.hpp
/// The sharded event loop: K per-shard event loops over per-node event
/// lanes, fork/join-synchronized per simulated tick, with a deterministic
/// serial merge — the parallel execution engine behind
/// `NetworkConfig::sim_threads` (network.hpp).
///
/// Architecture (NDN-DPDK's shared-nothing forwarder, adapted to a DES):
/// nodes are partitioned into K contiguous shards.  Each shard owns its
/// slice of the simulation outright — a TimeIndex of pending deliveries, a
/// message SlotPool, and an inbound SPSC ring (spsc_ring.hpp) its lane —
/// so the hot phase touches no shared mutable state at all.
///
/// One tick executes in two phases:
///
///  1. **Parallel phase** (ThreadPool fork/join): every shard drains its
///     lane into its time index and runs all deliveries at the current
///     tick T in (time, seq) order.  Handler sends are *deferred*: they
///     are recorded (with the triggering delivery's global seq) into the
///     shard's outbox instead of touching the shared RNG.
///  2. **Serial merge** (the calling thread, after the barrier): the
///     per-shard outboxes — each already ascending in trigger seq — are
///     k-way merged by trigger seq, and each send executes the shared
///     decision logic (Network::plan_send: adjacency, counters, drop /
///     delay / duplicate draws) in exactly the order the serial queue
///     would have, then pushes the resulting deliveries into the
///     destination shards' lanes with globally sequenced (time, seq) tags.
///
/// **Merge-ordering invariant** (docs/ARCHITECTURE.md §"Scheduler & event
/// lanes"): deliveries at one tick on distinct nodes are causally
/// independent (min_delay >= 1, so nothing sent at T can arrive at T), and
/// the merge replays their sends in ascending trigger seq — the exact
/// interleaving of the serial queue.  Hence the one RNG stream is consumed
/// draw-for-draw identically, seq tags coincide, and traces, quiescence
/// times, counters, and sweep tables are byte-identical to the serial
/// EventQueue at every worker count (pinned by tests/sim_test.cpp and the
/// bench_e5/e7 checksummed A/B sections).

namespace lr {

/// The K-shard tick-synchronous event loop; see the file comment.  Driven
/// through Network (send / run_until_idle / now delegate here when
/// `NetworkConfig::sim_threads` selects sharded mode); not constructed
/// directly by user code.
class ShardedEventLoop {
 public:
  /// Builds the loop over `network` with `workers` shards, using
  /// `scheduler` for every per-shard time index.  When `pool` is non-null
  /// it is borrowed (its size overrides `workers`); otherwise the loop
  /// owns a pool of `workers` threads (0 = hardware concurrency).
  ShardedEventLoop(Network& network, std::size_t workers, EventSchedulerKind scheduler,
                   ThreadPool* pool);

  /// Loop state holds pool-slot indices only; default teardown is fine,
  /// but the destructor must see complete member types out of line.
  ~ShardedEventLoop();

  /// Shards capture `this` and the network; copying/moving would dangle.
  ShardedEventLoop(const ShardedEventLoop&) = delete;
  /// \copydoc ShardedEventLoop(const ShardedEventLoop&)
  ShardedEventLoop& operator=(const ShardedEventLoop&) = delete;

  /// Runs ticks until no delivery is pending anywhere (or `max_events`
  /// deliveries have executed — checked between ticks); returns deliveries
  /// executed by this call.  Throws std::logic_error when application
  /// events were co-scheduled on the network's serial queue (unsupported
  /// in sharded mode).
  std::uint64_t run_until_idle(std::uint64_t max_events);

  /// Current simulated time: the last tick processed (0 before the first).
  SimTime now() const noexcept { return now_; }

  /// Entry point for Network::send: defers the send into the current
  /// shard's outbox during a parallel phase, or executes it immediately
  /// (exactly like the serial path) from ordinary serial context.
  void submit(NodeId from, NodeId to, std::span<const std::int64_t> payload);

  /// Number of shards (== pool worker count).
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// The shard owning node `u` (contiguous ranges: u * K / n).
  std::size_t shard_of(NodeId u) const noexcept {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(u) * shards_.size() / num_nodes_);
  }

  /// Message-pool slots summed over all shards (Network's pool metric).
  std::size_t message_pool_slots() const;

  /// True iff no delivery is pending in any lane or index.
  bool idle() const;

 private:
  /// Sentinel "no pending time".
  static constexpr SimTime kNoTime = ~SimTime{0};
  /// Lane ring capacity; overflow spills to an unbounded side buffer, so
  /// this bounds only the lock-free fast path, never correctness.
  static constexpr std::size_t kLaneCapacity = 4096;

  /// One pending delivery in a lane or per-shard index: global (time, seq)
  /// tag plus the destination shard's message-pool slot.
  struct Delivery {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// One deferred handler send, recorded during a parallel phase: the
  /// triggering delivery's global seq (the merge key) plus the payload's
  /// span in the shard's arena.
  struct PendingSend {
    std::uint64_t trigger_seq;
    NodeId from;
    NodeId to;
    std::uint32_t offset;
    std::uint32_t words;
  };

  /// One shard's private world.  Aligned out of false sharing; held by
  /// unique_ptr because the ring's atomics pin it in place.
  struct alignas(64) Shard {
    explicit Shard(EventSchedulerKind scheduler)
        : index(scheduler), ring(kLaneCapacity) {}

    TimeIndex index;             ///< pending deliveries, (time, seq) order
    SlotPool<NetMessage> pool;   ///< this shard's in-flight message slots
    SpscRing<Delivery> ring;     ///< inbound lane (merge thread -> shard)
    std::vector<Delivery> spill; ///< lane overflow (barrier-synchronized)
    std::vector<PendingSend> outbox;  ///< deferred sends of the last phase
    std::vector<std::int64_t> arena;  ///< payload words backing the outbox
    SimTime next_time = kNoTime;  ///< index minimum after the last phase
    SimTime lane_min = kNoTime;   ///< earliest undrained lane delivery
    std::uint64_t phase_delivered = 0;  ///< deliveries run in the last phase
    std::exception_ptr error;     ///< first handler exception of the phase
  };

  void run_phase(std::size_t shard_index);
  void merge_outboxes();
  void immediate_send(NodeId from, NodeId to, std::span<const std::int64_t> payload);

  Network* network_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< engaged when not borrowing
  ThreadPool* pool_;                        ///< the pool actually used
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t num_nodes_;
  SimTime now_ = 0;       ///< last processed tick
  std::uint64_t next_seq_ = 0;  ///< global delivery sequence
  bool in_parallel_ = false;    ///< set around the fork/join phase
};

}  // namespace lr

#include "sim/dist_router.hpp"

namespace lr {

DistRouter::DistRouter(DistLinkReversal& protocol, Network& network, std::size_t ttl)
    : protocol_(&protocol),
      network_(&network),
      ttl_(ttl == 0 ? 4 * network.graph().num_nodes() : ttl) {}

void DistRouter::inject(NodeId source) {
  ++stats_.injected;
  forward(source, 0, ttl_);
}

std::optional<NodeId> DistRouter::best_next_hop(NodeId at) const {
  return protocol_->best_out_neighbor_view(at);
}

void DistRouter::forward(NodeId at, std::uint64_t hops_so_far, std::uint64_t ttl_left) {
  if (at == protocol_->destination()) {
    ++stats_.delivered;
    stats_.total_hops += hops_so_far;
    return;
  }
  if (ttl_left == 0) {
    ++stats_.dropped_ttl;
    return;
  }
  const auto next = best_next_hop(at);
  if (!next) {
    ++stats_.dropped_no_route;
    return;
  }
  // One hop of data-plane latency.  Forwarding is scheduled through the
  // same event queue as control traffic, so packets race DAG repairs
  // exactly as they would in a real deployment.
  network_->queue().schedule_in(1, [this, next = *next, hops_so_far, ttl_left] {
    forward(next, hops_so_far + 1, ttl_left - 1);
  });
}

}  // namespace lr

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/dist_lr.hpp"

/// \file dist_router.hpp
/// Data-plane routing on top of the distributed link-reversal control
/// plane: the full TORA picture, simulated.
///
/// DistLinkReversal maintains each node's height and neighbor-height views
/// (the control plane).  DistRouter injects DATA packets that are forwarded
/// hop by hop using only *local* information: each node sends the packet to
/// its lowest-height out-neighbor according to its own view.  Because true
/// heights strictly decrease along correctly-known edges, packets cannot
/// loop through up-to-date regions; a TTL guards against transient view
/// staleness, and undeliverable packets (stranded at a node that believes
/// itself a sink) are dropped and counted.
///
/// This is the piece that turns the paper's acyclicity guarantee into a
/// service-level property: loop-free packet delivery while the DAG is being
/// repaired.

namespace lr {

/// Data-plane counters of a DistRouter.
struct PacketStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_route = 0;  ///< holder believed itself a sink
  std::uint64_t dropped_ttl = 0;       ///< TTL expired (stale-view loop)
  std::uint64_t total_hops = 0;        ///< hops of delivered packets
};

/// The simulated data plane over the DistLinkReversal control plane; see
/// the file comment.
class DistRouter {
 public:
  /// The router shares the protocol's network; the protocol must outlive
  /// the router.  `ttl` bounds per-packet hops (default: 4·n).
  DistRouter(DistLinkReversal& protocol, Network& network, std::size_t ttl = 0);

  /// Injects a data packet at `source`, addressed to the protocol's
  /// destination.  Forwarding happens through simulated PACKET messages, so
  /// delivery interleaves with in-flight control traffic.
  void inject(NodeId source);

  /// Data-plane counters.
  const PacketStats& stats() const noexcept { return stats_; }

  /// Mean hop count of delivered packets.
  double mean_hops() const {
    return stats_.delivered == 0
               ? 0.0
               : static_cast<double>(stats_.total_hops) / static_cast<double>(stats_.delivered);
  }

 private:
  void forward(NodeId at, std::uint64_t hops_so_far, std::uint64_t ttl_left);
  std::optional<NodeId> best_next_hop(NodeId at) const;

  DistLinkReversal* protocol_;
  Network* network_;
  std::size_t ttl_;
  PacketStats stats_;
};

}  // namespace lr

#include "sim/dist_lr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/digraph_algos.hpp"

namespace lr {

namespace {

/// Topological levels of the initial orientation, decreasing along edges
/// (same construction as the centralized GB automata).
std::vector<std::int64_t> initial_levels(const Orientation& o) {
  const auto order = topological_order(o);
  if (!order) {
    throw std::invalid_argument("DistLinkReversal: initial orientation must be acyclic");
  }
  std::vector<std::int64_t> level(order->size());
  const std::int64_t n = static_cast<std::int64_t>(order->size());
  for (std::int64_t pos = 0; pos < n; ++pos) {
    level[(*order)[static_cast<std::size_t>(pos)]] = n - 1 - pos;
  }
  return level;
}

}  // namespace

DistLinkReversal::DistLinkReversal(const Instance& instance, ReversalRule rule, Network& network)
    : DistLinkReversal(instance, rule, network, nullptr) {}

DistLinkReversal::DistLinkReversal(const Instance& instance, ReversalRule rule, Network& network,
                                   const CsrGraph& frozen)
    : DistLinkReversal(instance, rule, network, &frozen) {}

DistLinkReversal::DistLinkReversal(const Instance& instance, ReversalRule rule, Network& network,
                                   const CsrGraph* frozen)
    : graph_(&instance.graph), network_(&network), rule_(rule), destination_(instance.destination) {
  if (&network.graph() != graph_) {
    throw std::invalid_argument("DistLinkReversal: network must be built over the instance graph");
  }
  const std::size_t n = graph_->num_nodes();
  const Orientation initial = instance.make_orientation();
  const auto levels = initial_levels(initial);

  if (rule_ == ReversalRule::kFull) {
    a_ = levels;
    b_.assign(n, 0);
  } else {
    a_.assign(n, 0);
    b_ = levels;
  }

  if (frozen != nullptr) {
    if (frozen->num_nodes() != n || frozen->num_edges() != graph_->num_edges()) {
      throw std::invalid_argument(
          "DistLinkReversal: frozen CSR snapshot does not match the instance");
    }
    csr_ = frozen;
  } else {
    owned_csr_.emplace(*graph_, initial.senses());
    csr_ = &*owned_csr_;
  }
  view_a_.resize(2 * csr_->num_edges());
  view_b_.resize(2 * csr_->num_edges());
  for (NodeId u = 0; u < n; ++u) {
    const CsrPos end = csr_->adjacency_end(u);
    for (CsrPos p = csr_->adjacency_begin(u); p < end; ++p) {
      view_a_[p] = a_[csr_->neighbor_at(p)];
      view_b_[p] = b_[csr_->neighbor_at(p)];
    }
  }
  steps_.assign(n, 0);

  for (NodeId u = 0; u < n; ++u) {
    network_->set_handler(u, [this](const NetMessage& message) { on_message(message); });
  }
}

void DistLinkReversal::start() {
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) maybe_step(u);
}

bool DistLinkReversal::locally_sink(NodeId u) const {
  // All neighbor heights (as viewed by u) are lexicographically above u's.
  const CsrPos begin = csr_->adjacency_begin(u);
  const CsrPos end = csr_->adjacency_end(u);
  if (begin == end) return false;
  const auto own = std::tuple(a_[u], b_[u], u);
  for (CsrPos p = begin; p < end; ++p) {
    if (std::tuple(view_a_[p], view_b_[p], csr_->neighbor_at(p)) < own) return false;
  }
  return true;
}

void DistLinkReversal::maybe_step(NodeId u) {
  if (u == destination_ || !locally_sink(u)) return;
  const CsrPos begin = csr_->adjacency_begin(u);
  const CsrPos end = csr_->adjacency_end(u);

  if (rule_ == ReversalRule::kFull) {
    std::int64_t max_a = std::numeric_limits<std::int64_t>::min();
    for (CsrPos p = begin; p < end; ++p) max_a = std::max(max_a, view_a_[p]);
    a_[u] = max_a + 1;
  } else {
    std::int64_t min_a = std::numeric_limits<std::int64_t>::max();
    for (CsrPos p = begin; p < end; ++p) min_a = std::min(min_a, view_a_[p]);
    const std::int64_t new_a = min_a + 1;
    std::int64_t min_b = std::numeric_limits<std::int64_t>::max();
    bool tie = false;
    for (CsrPos p = begin; p < end; ++p) {
      if (view_a_[p] == new_a) {
        tie = true;
        min_b = std::min(min_b, view_b_[p]);
      }
    }
    a_[u] = new_a;
    if (tie) b_[u] = min_b - 1;
  }
  ++steps_[u];
  broadcast_height(u);
}

void DistLinkReversal::broadcast_height(NodeId u) {
  for (const NodeId v : csr_->neighbors(u)) {
    network_->send(u, v, {a_[u], b_[u]});
  }
}

std::uint64_t DistLinkReversal::resync_round() {
  const std::uint64_t before = network_->messages_sent();
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
    broadcast_height(u);
  }
  return network_->messages_sent() - before;
}

std::optional<std::size_t> DistLinkReversal::run_with_resync(std::size_t max_rounds) {
  start();
  network_->run_until_idle();
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (converged()) return round;
    resync_round();
    network_->run_until_idle();
  }
  return converged() ? std::optional<std::size_t>{max_rounds} : std::nullopt;
}

void DistLinkReversal::notify_link_restored(EdgeId e) {
  const NodeId u = graph_->edge_u(e);
  const NodeId v = graph_->edge_v(e);
  network_->send(u, v, {a_[u], b_[u]});
  network_->send(v, u, {a_[v], b_[v]});
}

void DistLinkReversal::on_message(const NetMessage& message) {
  const NodeId u = message.to;
  const NodeId from = message.from;
  const auto position = csr_->position_of(u, from);
  if (!position) return;  // not a neighbor: ignore
  const std::size_t slot = *position;

  // Heights only increase: a stale (re-ordered) UPDATE must not regress the
  // view.
  const auto incoming = std::tuple(message.payload.at(0), message.payload.at(1), from);
  const auto current = std::tuple(view_a_[slot], view_b_[slot], from);
  if (incoming <= current) return;
  view_a_[slot] = message.payload[0];
  view_b_[slot] = message.payload[1];

  maybe_step(u);
}

std::uint64_t DistLinkReversal::total_steps() const {
  std::uint64_t total = 0;
  for (const std::uint64_t s : steps_) total += s;
  return total;
}

std::optional<NodeId> DistLinkReversal::best_out_neighbor_view(NodeId u) const {
  const auto own = std::tuple(a_[u], b_[u], u);
  std::optional<NodeId> best;
  std::tuple<std::int64_t, std::int64_t, NodeId> best_height{};
  const CsrPos end = csr_->adjacency_end(u);
  for (CsrPos p = csr_->adjacency_begin(u); p < end; ++p) {
    const auto viewed = std::tuple(view_a_[p], view_b_[p], csr_->neighbor_at(p));
    if (viewed < own && (!best || viewed < best_height)) {
      best = csr_->neighbor_at(p);
      best_height = viewed;
    }
  }
  return best;
}

Orientation DistLinkReversal::derived_orientation() const {
  std::vector<EdgeSense> senses(graph_->num_edges());
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    const NodeId u = graph_->edge_u(e);
    const NodeId v = graph_->edge_v(e);
    // Points from the higher height to the lower one.
    senses[e] = std::tuple(a_[u], b_[u], u) > std::tuple(a_[v], b_[v], v) ? EdgeSense::kForward
                                                                          : EdgeSense::kBackward;
  }
  return Orientation(*graph_, std::move(senses));
}

bool DistLinkReversal::converged() const {
  return is_destination_oriented(derived_orientation(), destination_);
}

}  // namespace lr

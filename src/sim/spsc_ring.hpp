#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

/// \file spsc_ring.hpp
/// A fixed-capacity single-producer / single-consumer ring buffer — the
/// event *lane* of the sharded event loop (sharded_loop.hpp): the merge
/// thread pushes deliveries addressed to a shard, that shard's worker
/// drains them at the start of its next phase.
///
/// The NDN-DPDK forwarder feeds its shared-nothing workers exactly this
/// way (one ring per worker, producers never touch consumer state).  Here
/// the roles additionally alternate across a fork/join barrier — the
/// producer only runs while consumers are parked and vice versa — so the
/// acquire/release pairs below are belt-and-braces for the cross-thread
/// handoff rather than load-bearing for mutual exclusion; they are what
/// lets the ThreadSanitizer job run the sharded suites clean.

namespace lr {

/// The SPSC ring; see the file comment.  `T` must be trivially copyable
/// (entries are POD delivery descriptors).  Capacity is rounded up to a
/// power of two.  When the ring is full, try_push returns false and the
/// caller spills to an unbounded side buffer — lanes never drop events.
template <typename T>
class SpscRing {
 public:
  /// A ring holding at most `capacity` entries (rounded up to a power of
  /// two, minimum 2).
  explicit SpscRing(std::size_t capacity = 1024) {
    std::size_t size = 2;
    while (size < capacity) size <<= 1;
    buffer_.resize(size);
    mask_ = size - 1;
  }

  /// Producer side: appends `value`; returns false when full.
  bool try_push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == buffer_.size()) return false;
    buffer_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops the oldest entry into `out`; returns false when
  /// empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = buffer_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Entries currently buffered (exact only when producer and consumer are
  /// quiescent, which the sharded loop's barrier guarantees at call sites).
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
  }

  /// The rounded-up capacity.
  std::size_t capacity() const noexcept { return buffer_.size(); }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace lr

#include "routing/mutex.hpp"

#include <stdexcept>

namespace lr {

LinkReversalMutex::LinkReversalMutex(const Graph& topology, NodeId initial_holder)
    : dag_(topology, initial_holder), pending_(topology.num_nodes(), false) {
  dag_.stabilize();
}

std::size_t LinkReversalMutex::request(NodeId u) {
  if (u >= dag_.num_nodes()) {
    throw std::invalid_argument("LinkReversalMutex::request: node out of range");
  }
  if (u == holder() || pending_[u]) return 0;
  const auto path = dag_.route(u);
  if (!path) {
    throw std::logic_error("LinkReversalMutex::request: no route to token holder");
  }
  pending_[u] = true;
  queue_.push_back(u);
  ++stats_.requests;
  stats_.total_request_hops += path->size() - 1;
  return path->size() - 1;
}

void LinkReversalMutex::link_up(NodeId u, NodeId v) {
  dag_.add_link(u, v);
  dag_.stabilize();
}

void LinkReversalMutex::link_down(NodeId u, NodeId v) {
  dag_.remove_link(u, v);
  dag_.stabilize();
}

NodeId LinkReversalMutex::release() {
  if (queue_.empty()) return holder();  // nobody waiting: keep the token
  const NodeId next = queue_.front();
  queue_.pop_front();
  pending_[next] = false;
  const std::uint64_t before = dag_.total_reversals();
  dag_.set_destination(next);
  dag_.stabilize();
  stats_.total_reversals += dag_.total_reversals() - before;
  ++stats_.grants;
  return next;
}

}  // namespace lr

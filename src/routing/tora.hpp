#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "graph/graph.hpp"
#include "routing/dynamic_heights.hpp"

/// \file tora.hpp
/// A TORA-style routing service: the motivating application of link
/// reversal (Gafni–Bertsekas; Park–Corson's TORA).  The service maintains a
/// destination-oriented DAG over a churning topology and forwards packets
/// greedily "downhill" along it.  This is the centralized service; the
/// message-passing control/data planes are sim/dist_lr.hpp and
/// sim/dist_router.hpp.
///
/// Route maintenance *is* partial reversal: a link removal can strand nodes
/// as sinks, and `stabilize()` reverses links until every node in the
/// destination's component is re-oriented.  Packets between maintenance
/// events follow strictly decreasing heights, so forwarding is loop-free —
/// precisely the property the paper's acyclicity theorem guarantees.

namespace lr {

/// Outcome of one send_packet() call.
struct DeliveryResult {
  bool delivered = false;    ///< true iff the packet reached the destination
  std::vector<NodeId> path;  ///< hop sequence (source first, destination last)
};

/// Service-lifetime counters of a ToraRouter.
struct ToraStats {
  std::uint64_t packets_sent = 0;       ///< send_packet() calls
  std::uint64_t packets_delivered = 0;  ///< packets that reached the destination
  std::uint64_t packets_buffered = 0;   ///< parked while source was partitioned
  std::uint64_t packets_flushed = 0;    ///< buffered packets later delivered
  std::uint64_t total_hops = 0;         ///< hops of all delivered packets
  std::uint64_t link_events = 0;        ///< link_up/link_down calls
  std::uint64_t reversals = 0;  ///< reversal steps across all maintenance
};

/// The centralized TORA-style routing service; see the file comment.
class ToraRouter {
 public:
  /// Builds the service over an initial topology and stabilizes it.
  ToraRouter(const Graph& initial_topology, NodeId destination);

  /// The destination all packets are addressed to.
  NodeId destination() const noexcept { return dag_.destination(); }

  /// Topology churn.  Each call re-stabilizes the DAG immediately (the
  /// centralized analogue of TORA's maintenance phase).
  void link_up(NodeId u, NodeId v);
  void link_down(NodeId u, NodeId v);

  /// Sends a packet from `source`; returns the path taken if a route
  /// exists.  If the source is partitioned from the destination the packet
  /// is *buffered* at the source (TORA's behavior) and re-tried after every
  /// subsequent topology event; `DeliveryResult.delivered` is then false.
  DeliveryResult send_packet(NodeId source);

  /// True iff `u` currently has a route to the destination.
  bool has_route(NodeId u) const { return dag_.routable(u); }

  /// Packets currently parked at partitioned sources.
  std::size_t buffered_packets() const;

  /// Service-lifetime counters.
  const ToraStats& stats() const noexcept { return stats_; }
  /// The underlying height DAG (read-only).
  const DynamicHeightsDag& dag() const noexcept { return dag_; }

 private:
  void flush_buffers();

  DynamicHeightsDag dag_;
  std::vector<std::uint32_t> buffer_;  ///< parked packet count per source
  ToraStats stats_;
};

/// Scripted churn driver for experiments: flips `events` random links
/// (down if up, up if down) over the lifetime of the run, sending `packets`
/// random-source packets after every event.  Returns the final stats.
ToraStats run_churn_scenario(const Graph& topology, NodeId destination, std::size_t events,
                             std::size_t packets_per_event, std::uint64_t seed);

}  // namespace lr

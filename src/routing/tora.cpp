#include "routing/tora.hpp"

namespace lr {

ToraRouter::ToraRouter(const Graph& initial_topology, NodeId destination)
    : dag_(initial_topology, destination), buffer_(initial_topology.num_nodes(), 0) {
  stats_.reversals += dag_.stabilize();
}

void ToraRouter::link_up(NodeId u, NodeId v) {
  dag_.add_link(u, v);
  ++stats_.link_events;
  stats_.reversals += dag_.stabilize();
  flush_buffers();
}

void ToraRouter::link_down(NodeId u, NodeId v) {
  dag_.remove_link(u, v);
  ++stats_.link_events;
  stats_.reversals += dag_.stabilize();
  flush_buffers();
}

DeliveryResult ToraRouter::send_packet(NodeId source) {
  ++stats_.packets_sent;
  DeliveryResult result;
  const auto path = dag_.route(source);
  if (path) {
    result.delivered = true;
    result.path = *path;
    ++stats_.packets_delivered;
    stats_.total_hops += path->size() - 1;
  } else {
    // Partitioned: park the packet at its source, TORA style; it is
    // re-tried after every topology event.
    ++buffer_[source];
    ++stats_.packets_buffered;
  }
  return result;
}

std::size_t ToraRouter::buffered_packets() const {
  std::size_t total = 0;
  for (const std::uint32_t count : buffer_) total += count;
  return total;
}

void ToraRouter::flush_buffers() {
  for (NodeId source = 0; source < buffer_.size(); ++source) {
    while (buffer_[source] > 0) {
      const auto path = dag_.route(source);
      if (!path) break;  // still partitioned: keep parking
      --buffer_[source];
      ++stats_.packets_flushed;
      ++stats_.packets_delivered;
      stats_.total_hops += path->size() - 1;
    }
  }
}

ToraStats run_churn_scenario(const Graph& topology, NodeId destination, std::size_t events,
                             std::size_t packets_per_event, std::uint64_t seed) {
  ToraRouter router(topology, destination);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<EdgeId> pick_edge(0, static_cast<EdgeId>(topology.num_edges() - 1));
  std::uniform_int_distribution<NodeId> pick_node(0,
                                                  static_cast<NodeId>(topology.num_nodes() - 1));
  for (std::size_t i = 0; i < events; ++i) {
    const EdgeId e = pick_edge(rng);
    const NodeId u = topology.edge_u(e);
    const NodeId v = topology.edge_v(e);
    if (router.dag().has_link(u, v)) {
      router.link_down(u, v);
    } else {
      router.link_up(u, v);
    }
    for (std::size_t p = 0; p < packets_per_event; ++p) {
      router.send_packet(pick_node(rng));
    }
  }
  return router.stats();
}

}  // namespace lr

#include "routing/leader_election.hpp"

namespace lr {

LeaderElectionService::LeaderElectionService(const Graph& topology)
    : dag_(topology, 0), alive_(topology.num_nodes(), true),
      alive_count_(topology.num_nodes()) {
  elect_and_orient();
}

std::optional<NodeId> LeaderElectionService::leader() const {
  if (alive_count_ == 0) return std::nullopt;
  return dag_.destination();
}

void LeaderElectionService::elect_and_orient() {
  // Highest alive id wins (a deterministic, locally computable rule).
  std::optional<NodeId> winner;
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) winner = u;
  }
  if (!winner) return;
  dag_.set_destination(*winner);
  dag_.stabilize();
}

std::uint64_t LeaderElectionService::fail_node(NodeId u) {
  if (!alive_[u]) return 0;
  alive_[u] = false;
  --alive_count_;
  // Remove all of u's links (copy first: removal invalidates the slice).
  const auto slice = dag_.neighbors(u);
  const std::vector<NodeId> nbrs(slice.begin(), slice.end());
  for (const NodeId v : nbrs) dag_.remove_link(u, v);

  const std::uint64_t before = dag_.total_reversals();
  if (alive_count_ > 0 && dag_.destination() == u) {
    elect_and_orient();
  } else if (alive_count_ > 0) {
    // A non-leader failure can still strand sinks: re-stabilize.
    dag_.stabilize();
  }
  return dag_.total_reversals() - before;
}

void LeaderElectionService::link_up(NodeId u, NodeId v) {
  if (!alive_[u] || !alive_[v]) return;  // failed nodes stay disconnected
  dag_.add_link(u, v);
  dag_.stabilize();
}

void LeaderElectionService::link_down(NodeId u, NodeId v) {
  dag_.remove_link(u, v);
  dag_.stabilize();
}

bool LeaderElectionService::leader_reachable_from_all() const {
  if (alive_count_ == 0) return true;
  const NodeId leader_id = dag_.destination();
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (!alive_[u] || u == leader_id) continue;
    if (!dag_.routable(u)) continue;  // different component: exempt
    if (!dag_.route(u)) return false;
  }
  return true;
}

}  // namespace lr

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "routing/dynamic_heights.hpp"

/// \file mutex.hpp
/// Mutual exclusion via link reversal — the third application named in the
/// paper's abstract.  This is the centralized service; its message-passing
/// counterpart is sim/dist_mutex.hpp.
///
/// Token-based scheme on a destination-oriented DAG (Welch–Walter style,
/// in the spirit of Raymond's tree algorithm generalized to DAGs): the
/// token holder is the DAG's destination, so every requester always has a
/// directed path to the current holder along which its request travels.
/// Granting the token to the next requester re-targets the DAG and lets
/// partial reversal re-orient the edges towards the new holder.  Acyclicity
/// (the paper's theorem) is what keeps request routes loop-free throughout.

namespace lr {

/// Service-lifetime counters of a LinkReversalMutex.
struct MutexStats {
  std::uint64_t requests = 0;            ///< accepted request() calls
  std::uint64_t grants = 0;              ///< token hand-offs performed
  std::uint64_t total_request_hops = 0;  ///< hops request paths traveled
  std::uint64_t total_reversals = 0;     ///< reversal steps re-orienting on grants
};

/// The centralized token-based mutual-exclusion service; see the file
/// comment.
class LinkReversalMutex {
 public:
  /// The token starts at `initial_holder`.  The topology must be connected
  /// for global liveness.
  LinkReversalMutex(const Graph& topology, NodeId initial_holder);

  /// The node currently holding the token.
  NodeId holder() const noexcept { return dag_.destination(); }

  /// True iff `u` currently holds the token and may enter its critical
  /// section.  Exactly one node satisfies this at any time (safety).
  bool may_enter(NodeId u) const { return u == holder(); }

  /// Requests the critical section for `u`.  The request is routed along
  /// the DAG to the holder and queued FIFO.  Returns the hop count of the
  /// request path (0 if u already holds the token or has a pending
  /// request).
  std::size_t request(NodeId u);

  /// Releases the critical section at the current holder and, if requests
  /// are pending, hands the token to the oldest requester (re-orienting the
  /// DAG via partial reversal).  Returns the new holder.
  NodeId release();

  /// Topology churn (the service-harness path): adds / removes an
  /// undirected link and immediately re-stabilizes towards the holder, so
  /// request routes stay valid across churn.  Idempotent, incremental (a
  /// live snapshot is patched, not rebuilt).  A removal can partition
  /// requesters from the holder; request() then has no route, which
  /// callers detect via dag().route() first.
  void link_up(NodeId u, NodeId v);
  /// \copydoc link_up
  void link_down(NodeId u, NodeId v);

  /// Pending requests in grant order.
  const std::deque<NodeId>& queue() const noexcept { return queue_; }

  /// Service-lifetime counters.
  const MutexStats& stats() const noexcept { return stats_; }
  /// The underlying height DAG (read-only).
  const DynamicHeightsDag& dag() const noexcept { return dag_; }

 private:
  DynamicHeightsDag dag_;
  std::deque<NodeId> queue_;
  std::vector<bool> pending_;
  MutexStats stats_;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "routing/dynamic_heights.hpp"

/// \file leader_election.hpp
/// Leader election via link reversal — the second application named in the
/// paper's abstract (and a chapter of Welch–Walter's *Link Reversal
/// Algorithms*).  This is the centralized, dynamic-topology service; its
/// message-passing counterpart over the simulated asynchronous network is
/// sim/dist_leader.hpp.
///
/// The elected leader plays the destination's role: the DAG is oriented so
/// every node has a directed path to the leader, which simultaneously gives
/// every node a *route* to the leader and makes the leader the unique sink
/// — a locally checkable certificate of leadership.  When the leader fails,
/// its links are removed, stranded nodes become sinks, and partial reversal
/// re-orients the component towards the new leader (the highest-id
/// survivor), exactly as link-reversal leader election prescribes.

namespace lr {

/// The centralized link-reversal leader-election service; see the file
/// comment.
class LeaderElectionService {
 public:
  /// Builds the service over `topology` and elects the initial leader.
  explicit LeaderElectionService(const Graph& topology);

  /// The current leader, or nullopt if every node has failed.
  std::optional<NodeId> leader() const;

  /// True iff `u` is alive.
  bool alive(NodeId u) const { return alive_[u]; }

  /// Number of alive nodes.
  std::size_t alive_count() const noexcept { return alive_count_; }

  /// Fails a node (leader or not): removes it and its links.  If the
  /// leader failed, re-elects (highest alive id in the failed leader's
  /// former component) and re-orients via partial reversal.  Returns the
  /// number of reversal steps the re-election cost.
  std::uint64_t fail_node(NodeId u);

  /// Topology churn (the service-harness path): adds / removes an
  /// undirected link between *alive* nodes and re-stabilizes towards the
  /// leader.  A link touching a failed node is ignored on the way up
  /// (failed nodes stay disconnected) and a no-op on the way down (its
  /// links were already removed).  Idempotent, incremental.
  void link_up(NodeId u, NodeId v);
  /// \copydoc link_up
  void link_down(NodeId u, NodeId v);

  /// True iff every alive node in the leader's component has a directed
  /// path to the leader (the election's correctness condition).
  bool leader_reachable_from_all() const;

  /// Reversal steps across all elections so far.
  std::uint64_t total_reversals() const noexcept { return dag_.total_reversals(); }

  /// The underlying height DAG (read-only).
  const DynamicHeightsDag& dag() const noexcept { return dag_; }

 private:
  void elect_and_orient();

  DynamicHeightsDag dag_;
  std::vector<bool> alive_;
  std::size_t alive_count_;
};

}  // namespace lr

#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "graph/types.hpp"

/// \file dynamic_heights.hpp
/// A dynamic-topology partial-reversal core shared by the routing services
/// (TORA-style routing, leader election, mutual exclusion).
///
/// Unlike the Section 3/4 automata — which fix G once — the applications
/// the paper's abstract names (routing, leader election, mutual exclusion)
/// live on networks whose links come and go and whose "destination" can
/// change (a new leader, the next token holder).  This class maintains
/// Gafni–Bertsekas triple heights over a mutable undirected topology:
///
///   * every link is directed from its lexicographically higher endpoint's
///     height to the lower one (acyclic by total order, always),
///   * `stabilize()` repeatedly applies the partial-reversal height update
///     to non-destination sinks until the destination's component is
///     destination-oriented,
///   * nodes outside the destination's component are reported unroutable
///     rather than reversed forever (the paper's model assumes
///     connectivity; TORA handles partition detection separately, which we
///     approximate by the component check).

namespace lr {

class DynamicHeightsDag {
 public:
  /// Starts with `num_nodes` nodes, no links, and the given destination.
  /// Heights start at (0, id) — distinct, so any initial link set is
  /// acyclic by total order.
  DynamicHeightsDag(std::size_t num_nodes, NodeId destination);

  std::size_t num_nodes() const noexcept { return a_.size(); }
  NodeId destination() const noexcept { return destination_; }

  /// Re-targets the DAG (new leader / token holder).  Call stabilize()
  /// afterwards.
  void set_destination(NodeId d);

  /// Adds / removes an undirected link.  Idempotent.  Call stabilize()
  /// afterwards to restore destination orientation.
  void add_link(NodeId u, NodeId v);
  void remove_link(NodeId u, NodeId v);
  bool has_link(NodeId u, NodeId v) const;

  std::tuple<std::int64_t, std::int64_t, NodeId> height(NodeId u) const {
    return {a_[u], b_[u], u};
  }

  /// True iff the link {u, v} is currently directed u -> v.
  bool directed_from(NodeId u, NodeId v) const { return height(u) > height(v); }

  /// True iff u has no outgoing link (and at least one link).
  bool is_sink(NodeId u) const;

  /// Applies partial-reversal height updates to non-destination sinks in
  /// the destination's component until none remain.  Returns the number of
  /// reversal steps performed.  Nodes in other components are left alone.
  std::uint64_t stabilize();

  /// True iff u is in the destination's component (i.e. routable once
  /// stabilized).
  bool routable(NodeId u) const;

  /// The out-neighbor with the smallest height (the steepest-descent next
  /// hop), or nullopt if u is the destination, a sink, or unroutable.
  std::optional<NodeId> next_hop(NodeId u) const;

  /// Follows next hops from u to the destination; nullopt if unroutable.
  /// The returned path starts at u and ends at the destination.
  std::optional<std::vector<NodeId>> route(NodeId u) const;

  /// Total reversal steps performed by all stabilize() calls so far.
  std::uint64_t total_reversals() const noexcept { return total_reversals_; }

  const std::vector<NodeId>& neighbors(NodeId u) const { return adjacency_[u]; }

 private:
  void partial_reversal_step(NodeId u);
  std::vector<bool> destination_component() const;

  NodeId destination_;
  std::vector<std::vector<NodeId>> adjacency_;  // sorted neighbor lists
  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
  std::uint64_t total_reversals_ = 0;
};

}  // namespace lr

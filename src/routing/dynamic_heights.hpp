#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"

/// \file dynamic_heights.hpp
/// A dynamic-topology partial-reversal core shared by the routing services
/// (TORA-style routing, leader election, mutual exclusion).
///
/// Unlike the Section 3/4 automata — which fix G once — the applications
/// the paper's abstract names (routing, leader election, mutual exclusion)
/// live on networks whose links come and go and whose "destination" can
/// change (a new leader, the next token holder).  This class maintains
/// Gafni–Bertsekas triple heights over a mutable undirected topology:
///
///   * every link is directed from its lexicographically higher endpoint's
///     height to the lower one (acyclic by total order, always),
///   * `stabilize()` repeatedly applies the partial-reversal height update
///     to non-destination sinks until the destination's component is
///     destination-oriented,
///   * nodes outside the destination's component are reported unroutable
///     rather than reversed forever (the paper's model assumes
///     connectivity; TORA handles partition detection separately, which we
///     approximate by the component check).
///
/// Execution layout (docs/PERFORMANCE.md): the link set is a sorted
/// canonical edge list, and every query loop (sink tests, reversal steps,
/// component BFS, next-hop scans) runs over a frozen `CsrGraph` snapshot.
/// Per-node out-degree counters are maintained incrementally under height
/// updates, making sink tests O(1) instead of an adjacency walk.
///
/// Snapshot maintenance is *incremental*: a single add_link/remove_link on
/// a live snapshot patches the CSR adjacency in place
/// (`CsrGraph::insert_link` / `remove_link`, one linear array pass) and
/// adjusts the one affected out-degree counter, so churn-heavy TORA sweeps
/// never rebuild.  A full rebuild happens only when no snapshot exists yet
/// (the empty-construction bootstrap) or after batch churn
/// (`apply_events` beyond the patch limit), where one rebuild beats many
/// patches.  The `snapshot_rebuilds()` / `snapshot_patches()` counters
/// expose which path ran, and tests assert single-link churn is
/// rebuild-free.

namespace lr {

// LinkEvent (one topology event of an apply_events batch) lives in
// graph/types.hpp so the churn-schedule generators can emit event streams
// without depending on the routing layer.

/// The dynamic-topology partial-reversal height core; see the file comment.
class DynamicHeightsDag {
 public:
  /// Starts with `num_nodes` nodes, no links, and the given destination.
  /// Heights start at (0, id) — distinct, so any initial link set is
  /// acyclic by total order.
  DynamicHeightsDag(std::size_t num_nodes, NodeId destination);

  /// Batch form: starts with all of `topology`'s links in one snapshot
  /// build (the services' construction fast path; equivalent to add_link
  /// over every edge, minus m incremental inserts).
  DynamicHeightsDag(const Graph& topology, NodeId destination);

  /// Number of nodes (fixed at construction; links churn, nodes do not).
  std::size_t num_nodes() const noexcept { return a_.size(); }

  /// The node the DAG is oriented towards.
  NodeId destination() const noexcept { return destination_; }

  /// Re-targets the DAG (new leader / token holder).  Call stabilize()
  /// afterwards.
  void set_destination(NodeId d);

  /// Adds / removes an undirected link.  Idempotent.  Call stabilize()
  /// afterwards to restore destination orientation.  On a live snapshot
  /// this is an in-place CSR patch, not a rebuild (see the file comment).
  void add_link(NodeId u, NodeId v);
  /// \copydoc add_link
  void remove_link(NodeId u, NodeId v);
  /// True iff the undirected link {u, v} is currently present.
  bool has_link(NodeId u, NodeId v) const;

  /// Applies a batch of link events in order (each idempotent, like
  /// add_link/remove_link).  Small batches patch the snapshot per event;
  /// beyond the internal patch limit the snapshot is invalidated first so
  /// the whole batch costs one rebuild — the batch-churn fallback.
  void apply_events(std::span<const LinkEvent> events);

  /// Drops the current snapshot so the next query rebuilds it from the
  /// link list.  Results never depend on this (a rebuilt snapshot is
  /// byte-identical to a patched one); it exists as a debug/test hook to
  /// force the full-rebuild path for comparison.
  void invalidate_snapshot() { stale_ = true; }

  /// Full snapshot (re)builds performed so far, the initial construction
  /// included.  Single-link churn on a live snapshot never increments
  /// this.
  std::uint64_t snapshot_rebuilds() const noexcept { return snapshot_rebuilds_; }

  /// In-place single-link snapshot patches performed so far.
  std::uint64_t snapshot_patches() const noexcept { return snapshot_patches_; }

  /// The Gafni–Bertsekas triple height of `u`: (a, b, id), compared
  /// lexicographically.
  std::tuple<std::int64_t, std::int64_t, NodeId> height(NodeId u) const {
    return {a_[u], b_[u], u};
  }

  /// True iff the link {u, v} is currently directed u -> v.
  bool directed_from(NodeId u, NodeId v) const { return height(u) > height(v); }

  /// True iff u has no outgoing link (and at least one link).  O(1) via the
  /// maintained out-degree counters.
  bool is_sink(NodeId u) const;

  /// Applies partial-reversal height updates to non-destination sinks in
  /// the destination's component until none remain.  Returns the number of
  /// reversal steps performed.  Nodes in other components are left alone.
  std::uint64_t stabilize();

  /// True iff u is in the destination's component (i.e. routable once
  /// stabilized).
  bool routable(NodeId u) const;

  /// The out-neighbor with the smallest height (the steepest-descent next
  /// hop), or nullopt if u is the destination, a sink, or unroutable.
  std::optional<NodeId> next_hop(NodeId u) const;

  /// Follows next hops from u to the destination; nullopt if unroutable.
  /// The returned path starts at u and ends at the destination.
  std::optional<std::vector<NodeId>> route(NodeId u) const;

  /// Total reversal steps performed by all stabilize() calls so far.
  std::uint64_t total_reversals() const noexcept { return total_reversals_; }

  /// Current neighbors of `u`, ascending — an O(1) slice of the CSR
  /// snapshot.  Invalidated by the next add_link/remove_link.
  std::span<const NodeId> neighbors(NodeId u) const;

 private:
  void ensure_snapshot() const;
  void partial_reversal_step(NodeId u);
  std::vector<bool> destination_component() const;

  NodeId destination_;
  /// The mutable link set: canonical (min, max) pairs, sorted — the only
  /// state churn touches; everything else derives from the snapshot.
  std::vector<std::pair<NodeId, NodeId>> links_;
  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
  std::uint64_t total_reversals_ = 0;

  // Lazily (re)built, incrementally patched execution snapshot (mutable:
  // const queries refresh it when stale).
  mutable CsrGraph csr_;
  mutable std::vector<std::uint32_t> out_degree_;  ///< derived from heights
  mutable bool stale_ = true;
  mutable std::uint64_t snapshot_rebuilds_ = 0;
  std::uint64_t snapshot_patches_ = 0;
};

}  // namespace lr

#include "routing/dynamic_heights.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace lr {

DynamicHeightsDag::DynamicHeightsDag(std::size_t num_nodes, NodeId destination)
    : destination_(destination), adjacency_(num_nodes), a_(num_nodes, 0), b_(num_nodes) {
  if (destination >= num_nodes) {
    throw std::invalid_argument("DynamicHeightsDag: destination out of range");
  }
  // Distinct b values make the initial height order total and deterministic.
  // Ascending in id, so orienting towards a high-id destination (e.g. a
  // newly elected leader) genuinely exercises reversals.
  for (NodeId u = 0; u < num_nodes; ++u) b_[u] = static_cast<std::int64_t>(u);
}

void DynamicHeightsDag::set_destination(NodeId d) {
  if (d >= num_nodes()) {
    throw std::invalid_argument("DynamicHeightsDag::set_destination: out of range");
  }
  destination_ = d;
}

void DynamicHeightsDag::add_link(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes() || u == v) {
    throw std::invalid_argument("DynamicHeightsDag::add_link: bad endpoints");
  }
  auto& au = adjacency_[u];
  const auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it != au.end() && *it == v) return;  // already present
  au.insert(it, v);
  auto& av = adjacency_[v];
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
}

void DynamicHeightsDag::remove_link(NodeId u, NodeId v) {
  const auto erase_from = [](std::vector<NodeId>& list, NodeId x) {
    const auto it = std::lower_bound(list.begin(), list.end(), x);
    if (it != list.end() && *it == x) list.erase(it);
  };
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::invalid_argument("DynamicHeightsDag::remove_link: bad endpoints");
  }
  erase_from(adjacency_[u], v);
  erase_from(adjacency_[v], u);
}

bool DynamicHeightsDag::has_link(NodeId u, NodeId v) const {
  const auto& au = adjacency_[u];
  return std::binary_search(au.begin(), au.end(), v);
}

bool DynamicHeightsDag::is_sink(NodeId u) const {
  if (adjacency_[u].empty()) return false;
  for (const NodeId v : adjacency_[u]) {
    if (directed_from(u, v)) return false;
  }
  return true;
}

void DynamicHeightsDag::partial_reversal_step(NodeId u) {
  std::int64_t min_a = std::numeric_limits<std::int64_t>::max();
  for (const NodeId v : adjacency_[u]) min_a = std::min(min_a, a_[v]);
  const std::int64_t new_a = min_a + 1;
  std::int64_t min_b = std::numeric_limits<std::int64_t>::max();
  bool tie = false;
  for (const NodeId v : adjacency_[u]) {
    if (a_[v] == new_a) {
      tie = true;
      min_b = std::min(min_b, b_[v]);
    }
  }
  a_[u] = new_a;
  if (tie) b_[u] = min_b - 1;
  ++total_reversals_;
}

std::vector<bool> DynamicHeightsDag::destination_component() const {
  std::vector<bool> in_component(num_nodes(), false);
  std::queue<NodeId> frontier;
  in_component[destination_] = true;
  frontier.push(destination_);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : adjacency_[u]) {
      if (!in_component[v]) {
        in_component[v] = true;
        frontier.push(v);
      }
    }
  }
  return in_component;
}

std::uint64_t DynamicHeightsDag::stabilize() {
  const auto in_component = destination_component();
  std::uint64_t steps = 0;
  // Simple work-list loop; a step can only create new sinks among the
  // stepping node's neighbors, so seed with all current sinks and chase.
  std::queue<NodeId> candidates;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (u != destination_ && in_component[u] && is_sink(u)) candidates.push(u);
  }
  while (!candidates.empty()) {
    const NodeId u = candidates.front();
    candidates.pop();
    if (u == destination_ || !is_sink(u)) continue;
    partial_reversal_step(u);
    ++steps;
    for (const NodeId v : adjacency_[u]) {
      if (v != destination_ && in_component[v] && is_sink(v)) candidates.push(v);
    }
    if (is_sink(u)) candidates.push(u);  // defensive; cannot normally happen
  }
  return steps;
}

bool DynamicHeightsDag::routable(NodeId u) const { return destination_component()[u]; }

std::optional<NodeId> DynamicHeightsDag::next_hop(NodeId u) const {
  if (u == destination_) return std::nullopt;
  std::optional<NodeId> best;
  for (const NodeId v : adjacency_[u]) {
    if (!directed_from(u, v)) continue;
    if (!best || height(v) < height(*best)) best = v;
  }
  return best;
}

std::optional<std::vector<NodeId>> DynamicHeightsDag::route(NodeId u) const {
  std::vector<NodeId> path{u};
  NodeId current = u;
  // Heights strictly decrease along the path, so it cannot loop; bound by n
  // anyway as a defensive measure.
  for (std::size_t hops = 0; hops <= num_nodes(); ++hops) {
    if (current == destination_) return path;
    const auto next = next_hop(current);
    if (!next) return std::nullopt;
    current = *next;
    path.push_back(current);
  }
  return std::nullopt;
}

}  // namespace lr

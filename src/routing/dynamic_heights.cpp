#include "routing/dynamic_heights.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace lr {

namespace {

/// Canonical (min, max) form of an undirected link.
std::pair<NodeId, NodeId> canonical(NodeId u, NodeId v) {
  return u < v ? std::pair{u, v} : std::pair{v, u};
}

}  // namespace

DynamicHeightsDag::DynamicHeightsDag(std::size_t num_nodes, NodeId destination)
    : destination_(destination), a_(num_nodes, 0), b_(num_nodes) {
  if (destination >= num_nodes) {
    throw std::invalid_argument("DynamicHeightsDag: destination out of range");
  }
  // Distinct b values make the initial height order total and deterministic.
  // Ascending in id, so orienting towards a high-id destination (e.g. a
  // newly elected leader) genuinely exercises reversals.
  for (NodeId u = 0; u < num_nodes; ++u) b_[u] = static_cast<std::int64_t>(u);
}

DynamicHeightsDag::DynamicHeightsDag(const Graph& topology, NodeId destination)
    : DynamicHeightsDag(topology.num_nodes(), destination) {
  links_ = topology.edges();
  std::sort(links_.begin(), links_.end());
  // Snapshot through the one rebuild path (ensure_snapshot builds from the
  // sorted link list) so edge ids are canonical ranks — the precondition
  // CsrGraph's in-place patching maintains; a Graph keeps its input edge
  // order, so snapshotting `topology` directly would bake in arbitrary ids.
  ensure_snapshot();
}

void DynamicHeightsDag::set_destination(NodeId d) {
  if (d >= num_nodes()) {
    throw std::invalid_argument("DynamicHeightsDag::set_destination: out of range");
  }
  destination_ = d;  // heights (and thus directions) are unaffected
}

void DynamicHeightsDag::add_link(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes() || u == v) {
    throw std::invalid_argument("DynamicHeightsDag::add_link: bad endpoints");
  }
  const auto link = canonical(u, v);
  const auto it = std::lower_bound(links_.begin(), links_.end(), link);
  if (it != links_.end() && *it == link) return;  // already present
  links_.insert(it, link);
  if (stale_) return;  // no snapshot to repair; the next query rebuilds
  // Incremental repair: patch the adjacency in place and admit the link
  // into the out-degree counters under the current heights.  The patched
  // snapshot is byte-identical to a full rebuild from links_.
  csr_.insert_link(u, v);
  ++out_degree_[directed_from(u, v) ? u : v];
  ++snapshot_patches_;
}

void DynamicHeightsDag::remove_link(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::invalid_argument("DynamicHeightsDag::remove_link: bad endpoints");
  }
  const auto link = canonical(u, v);
  const auto it = std::lower_bound(links_.begin(), links_.end(), link);
  if (it == links_.end() || *it != link) return;  // absent
  links_.erase(it);
  if (stale_) return;
  // Incremental repair, mirroring add_link: retract the link from the
  // counters under the current heights, then patch it out of the CSR.
  --out_degree_[directed_from(u, v) ? u : v];
  csr_.remove_link(u, v);
  ++snapshot_patches_;
}

void DynamicHeightsDag::apply_events(std::span<const LinkEvent> events) {
  // Beyond this many events, one rebuild is cheaper than per-event O(m)
  // patches; results are identical either way.
  constexpr std::size_t kPatchBatchLimit = 4;
  if (events.size() > kPatchBatchLimit) stale_ = true;  // batch-churn fallback
  for (const LinkEvent& event : events) {
    if (event.up) {
      add_link(event.u, event.v);
    } else {
      remove_link(event.u, event.v);
    }
  }
}

bool DynamicHeightsDag::has_link(NodeId u, NodeId v) const {
  return std::binary_search(links_.begin(), links_.end(), canonical(u, v));
}

void DynamicHeightsDag::ensure_snapshot() const {
  if (!stale_) return;
  ++snapshot_rebuilds_;
  csr_ = CsrGraph(Graph(num_nodes(), links_));
  out_degree_.assign(num_nodes(), 0);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : csr_.neighbors(u)) {
      if (directed_from(u, v)) ++out_degree_[u];
    }
  }
  stale_ = false;
}

std::span<const NodeId> DynamicHeightsDag::neighbors(NodeId u) const {
  ensure_snapshot();
  return csr_.neighbors(u);
}

bool DynamicHeightsDag::is_sink(NodeId u) const {
  ensure_snapshot();
  return csr_.degree(u) > 0 && out_degree_[u] == 0;
}

void DynamicHeightsDag::partial_reversal_step(NodeId u) {
  const auto slice = csr_.neighbors(u);
  // Retract u's links from the out-degree counters under the old height...
  for (const NodeId v : slice) {
    if (directed_from(u, v)) {
      --out_degree_[u];
    } else {
      --out_degree_[v];
    }
  }
  std::int64_t min_a = std::numeric_limits<std::int64_t>::max();
  for (const NodeId v : slice) min_a = std::min(min_a, a_[v]);
  const std::int64_t new_a = min_a + 1;
  std::int64_t min_b = std::numeric_limits<std::int64_t>::max();
  bool tie = false;
  for (const NodeId v : slice) {
    if (a_[v] == new_a) {
      tie = true;
      min_b = std::min(min_b, b_[v]);
    }
  }
  a_[u] = new_a;
  if (tie) b_[u] = min_b - 1;
  // ...and re-admit them under the new one (only u's height moved, so only
  // u's incident links can have flipped).
  for (const NodeId v : slice) {
    if (directed_from(u, v)) {
      ++out_degree_[u];
    } else {
      ++out_degree_[v];
    }
  }
  ++total_reversals_;
}

std::vector<bool> DynamicHeightsDag::destination_component() const {
  ensure_snapshot();
  std::vector<bool> in_component(num_nodes(), false);
  std::queue<NodeId> frontier;
  in_component[destination_] = true;
  frontier.push(destination_);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : csr_.neighbors(u)) {
      if (!in_component[v]) {
        in_component[v] = true;
        frontier.push(v);
      }
    }
  }
  return in_component;
}

std::uint64_t DynamicHeightsDag::stabilize() {
  ensure_snapshot();
  const auto in_component = destination_component();
  std::uint64_t steps = 0;
  // Simple work-list loop; a step can only create new sinks among the
  // stepping node's neighbors, so seed with all current sinks and chase.
  // Sink tests are O(1) through the out-degree counters.
  std::queue<NodeId> candidates;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (u != destination_ && in_component[u] && is_sink(u)) candidates.push(u);
  }
  while (!candidates.empty()) {
    const NodeId u = candidates.front();
    candidates.pop();
    if (u == destination_ || !is_sink(u)) continue;
    partial_reversal_step(u);
    ++steps;
    for (const NodeId v : csr_.neighbors(u)) {
      if (v != destination_ && in_component[v] && is_sink(v)) candidates.push(v);
    }
    if (is_sink(u)) candidates.push(u);  // defensive; cannot normally happen
  }
  return steps;
}

bool DynamicHeightsDag::routable(NodeId u) const { return destination_component()[u]; }

std::optional<NodeId> DynamicHeightsDag::next_hop(NodeId u) const {
  if (u == destination_) return std::nullopt;
  ensure_snapshot();
  std::optional<NodeId> best;
  for (const NodeId v : csr_.neighbors(u)) {
    if (!directed_from(u, v)) continue;
    if (!best || height(v) < height(*best)) best = v;
  }
  return best;
}

std::optional<std::vector<NodeId>> DynamicHeightsDag::route(NodeId u) const {
  std::vector<NodeId> path{u};
  NodeId current = u;
  // Heights strictly decrease along the path, so it cannot loop; bound by n
  // anyway as a defensive measure.
  for (std::size_t hops = 0; hops <= num_nodes(); ++hops) {
    if (current == destination_) return path;
    const auto next = next_hop(current);
    if (!next) return std::nullopt;
    current = *next;
    path.push_back(current);
  }
  return std::nullopt;
}

}  // namespace lr
